// Shared command-line front end for the bench binaries. Every bench used
// to hand-roll its own env parsing; they now share one flag set:
//
//   --jobs N            worker threads (0 = auto; default MANET_JOBS or
//                       hardware concurrency). Output bytes are identical
//                       for every value of N.
//   --scale TIER        tiny | quick | full (default: quick, or full when
//                       REPRO_FULL=1 — the legacy env knob still works)
//   --seeds N           mobility-seed replications per point (default:
//                       the scale tier's replication count)
//   --filter AXIS=VALUE restrict a plan axis to one value (repeatable);
//                       unknown axis or value is a hard error
//   --export-dir DIR    structured export directory (sets MANET_EXPORT_DIR
//                       so telemetry config and table CSV mirroring pick
//                       it up)
//   --progress          per-run progress lines on stderr
//   --help              usage and exit
//
// Durability / supervision flags (DESIGN.md "Experiment durability &
// supervision"):
//
//   --journal FILE      append every finished cell to a durable JSONL
//                       journal
//   --resume            skip cells already journaled by a matching build +
//                       config (requires --journal); exports stay
//                       byte-identical to an uninterrupted run
//   --isolate-cells     run each cell in a supervised child process; a
//                       crashing or hung cell is quarantined, not fatal
//   --cell-timeout SEC  per-cell wall-clock deadline (SIGKILL under
//                       --isolate-cells, warning otherwise)
//   --retries N         extra attempts per failed cell (exponential
//                       backoff)
//   --run-cell L R OUT  (internal) child protocol: run one cell, write its
//                       result JSON to OUT, exit
//
// Parse once at the top of main() — before building any ScenarioConfig,
// because --export-dir works by setting the environment the config reads.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "src/scenario/experiment.h"
#include "src/scenario/runner.h"
#include "src/scenario/sweep.h"

namespace manet::scenario {

class BenchCli {
 public:
  /// Parse argv. Prints usage and calls std::exit(0) on --help; prints the
  /// error and calls std::exit(2) on a malformed flag. `benchName` labels
  /// the usage text.
  BenchCli(int argc, char** argv, std::string benchName);

  /// Scale tier (--scale, else REPRO_FULL, else quick).
  const BenchScale& scale() const { return scale_; }

  /// Seed replications per point (--seeds, else the tier's count).
  int replications() const { return replications_; }

  /// Requested worker count (0 = resolveJobs default).
  int jobs() const { return jobs_; }

  /// Runner options carrying jobs / replications / --progress plus the
  /// durability and supervision flags (journal, resume, isolation,
  /// timeout, retries, self-command). Callers add onRun / runFn / keepRuns
  /// as needed.
  RunnerOptions runnerOptions() const;

  /// Exit code for main(): prints the failure digest when cells were
  /// quarantined and returns 1, else 0. Use as `return cli.finish(result);`
  /// so campaign failures are visible to CI and shells.
  int finish(const SweepResult& result) const;

  /// Apply every --filter AXIS=VALUE to the plan (hard error on unknown
  /// axis or value). Returns the plan for chaining.
  ExperimentPlan& applyFilters(ExperimentPlan& plan) const;

  /// Multi-plan variant (benches that run several plans, e.g. the
  /// ablations): filters whose axis the plan does not have are skipped;
  /// a matching axis with a non-matching value is still a hard error.
  /// Call checkFiltersConsumed() after the last plan so a filter whose
  /// axis matched NO plan (a typo) still fails loudly.
  ExperimentPlan& applyMatchingFilters(ExperimentPlan& plan) const;
  void checkFiltersConsumed() const;

 private:
  std::string benchName_;
  BenchScale scale_;
  int replications_ = 1;
  int jobs_ = 0;
  bool progress_ = false;
  std::vector<std::pair<std::string, std::string>> filters_;
  /// Tracks which filters applyMatchingFilters has matched so far.
  mutable std::vector<bool> filterUsed_;
  // Durability / supervision.
  std::string journalPath_;
  bool resume_ = false;
  bool isolateCells_ = false;
  double cellTimeoutSec_ = 0.0;
  int retries_ = 0;
  std::string runCellLabel_;
  int runCellRep_ = 0;
  std::string runCellOut_;
  /// argv[0] + plan-shaping flags only: how a child re-runs this plan.
  std::vector<std::string> selfCommand_;
  /// Full original command line, recorded in the journal header.
  std::string campaignCmd_;
};

}  // namespace manet::scenario
