// Executes a FaultPlan against a live Network.
//
// The injector is owned by the Network (installFaults) and drives everything
// through the shared scheduler: scripted events fire at their timestamps,
// and each enabled stochastic generator (churn, blackouts, noise, surges)
// re-arms itself with exponentially distributed gaps drawn from a dedicated
// "fault" RNG stream. Because that stream is derived (not consumed) from the
// network RNG and no generator is armed for an empty plan, a run without
// faults is bit-identical to one on a build without this subsystem.
//
// Every injected fault is counted in Metrics (fault* counters) and emitted
// through the Tracer (node_crash / node_recover / link_blackout /
// noise_burst / traffic_surge records), so traces reconcile with metrics
// and tools like examples/trace_inspector can show a fault timeline.
#pragma once

#include <vector>

#include "src/fault/fault_plan.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"
#include "src/telemetry/trace.h"

namespace manet::net {
class Network;
}
namespace manet::sim {
class Scheduler;
}
namespace manet::traffic {
class CbrSource;
}

namespace manet::fault {

class FaultInjector {
 public:
  /// All nodes must already be added to `network`; `horizon` is the run
  /// length (generators stop re-arming past it).
  FaultInjector(net::Network& network, FaultPlan plan, sim::Time horizon);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Register a CBR source for traffic surges (non-owning; must outlive the
  /// run). Call before the simulation starts.
  void attachTrafficSource(traffic::CbrSource* src) {
    sources_.push_back(src);
  }

  bool nodeUp(net::NodeId id) const { return !down_.at(id); }
  const FaultPlan& plan() const { return plan_; }

 private:
  sim::Scheduler& sched();

  void scheduleScripted();
  void startChurn();
  void churnCrash(net::NodeId id);
  void churnRecover(net::NodeId id);
  void armBlackoutGenerator(sim::Time at);
  void armNoiseGenerator(sim::Time at);
  void armSurgeGenerator(sim::Time at);

  void crash(net::NodeId id);
  void recover(net::NodeId id, bool wipeCaches);
  void beginBlackout(net::NodeId from, net::NodeId to, sim::Time duration,
                     bool bothDirections);
  void beginNoise(sim::Time duration, double corruptProb);
  void endNoise();
  void beginSurge(sim::Time duration, double multiplier);
  void endSurge();

  /// Draw an exponential duration, floored at 1 ms so generators always
  /// make forward progress.
  sim::Time expDuration(double meanSec);

  void traceFault(telemetry::TraceEvent event, net::NodeId node,
                  net::NodeId src, net::NodeId dst, std::int64_t detail);

  net::Network& net_;
  FaultPlan plan_;
  sim::Time horizon_;
  sim::Rng rng_;       // generator gaps, durations, target selection
  sim::Rng noiseRng_;  // consumed by radios while a noise burst is active
  std::vector<bool> down_;
  std::vector<traffic::CbrSource*> sources_;
  /// Scratch for in-range blackout target selection (kept across windows so
  /// the hot path does not allocate).
  std::vector<net::NodeId> candidates_;
  bool noiseActive_ = false;
  bool surgeActive_ = false;
};

}  // namespace manet::fault
