#include "src/fault/fault_plan.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace manet::fault {

const char* toString(FaultKind k) {
  switch (k) {
    case FaultKind::kNodeCrash:
      return "node_crash";
    case FaultKind::kNodeRecover:
      return "node_recover";
    case FaultKind::kLinkBlackout:
      return "link_blackout";
    case FaultKind::kNoiseBurst:
      return "noise_burst";
    case FaultKind::kTrafficSurge:
      return "traffic_surge";
  }
  return "unknown";
}

bool FaultPlan::empty() const {
  return scripted.empty() && churn.fraction == 0.0 &&
         blackout.meanGapSec == 0.0 && noise.meanGapSec == 0.0 &&
         surge.meanGapSec == 0.0;
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("fault plan: " + what);
}

void validateEvent(const FaultEvent& ev, std::size_t index, int numNodes) {
  const std::string where =
      "scripted event #" + std::to_string(index) + " (" + toString(ev.kind) +
      "): ";
  if (ev.at < sim::Time::zero()) fail(where + "`at` must be >= 0");
  const bool nodeScoped = ev.kind == FaultKind::kNodeCrash ||
                          ev.kind == FaultKind::kNodeRecover ||
                          ev.kind == FaultKind::kLinkBlackout;
  if (nodeScoped && ev.node >= static_cast<net::NodeId>(numNodes)) {
    fail(where + "node " + std::to_string(ev.node) + " out of range (have " +
         std::to_string(numNodes) + " nodes)");
  }
  switch (ev.kind) {
    case FaultKind::kLinkBlackout:
      if (ev.peer >= static_cast<net::NodeId>(numNodes)) {
        fail(where + "peer " + std::to_string(ev.peer) +
             " out of range (have " + std::to_string(numNodes) + " nodes)");
      }
      if (ev.peer == ev.node) fail(where + "node and peer must differ");
      if (ev.duration <= sim::Time::zero()) {
        fail(where + "duration must be > 0");
      }
      break;
    case FaultKind::kNoiseBurst:
      if (ev.duration <= sim::Time::zero()) {
        fail(where + "duration must be > 0");
      }
      if (ev.value <= 0.0 || ev.value > 1.0) {
        fail(where + "value (corruption probability) must be in (0, 1], got " +
             std::to_string(ev.value));
      }
      break;
    case FaultKind::kTrafficSurge:
      if (ev.duration <= sim::Time::zero()) {
        fail(where + "duration must be > 0");
      }
      if (ev.value <= 0.0) {
        fail(where + "value (rate multiplier) must be > 0, got " +
             std::to_string(ev.value));
      }
      break;
    case FaultKind::kNodeCrash:
    case FaultKind::kNodeRecover:
      break;
  }
}

}  // namespace

void FaultPlan::validate(int numNodes, sim::Time horizon) const {
  if (horizon <= sim::Time::zero()) fail("scenario horizon must be > 0");
  if (churn.fraction < 0.0 || churn.fraction > 1.0) {
    fail("churn.fraction must be in [0, 1], got " +
         std::to_string(churn.fraction));
  }
  if (churn.fraction > 0.0) {
    if (churn.meanUpTimeSec <= 0.0) {
      fail("churn.meanUpTimeSec must be > 0 when churn is enabled");
    }
    if (churn.meanDownTimeSec <= 0.0) {
      fail("churn.meanDownTimeSec must be > 0 when churn is enabled");
    }
  }
  if (blackout.meanGapSec < 0.0) fail("blackout.meanGapSec must be >= 0");
  if (blackout.meanGapSec > 0.0 && blackout.meanDurationSec <= 0.0) {
    fail("blackout.meanDurationSec must be > 0 when blackouts are enabled");
  }
  if (blackout.meanGapSec > 0.0 && numNodes < 2) {
    fail("link blackouts need at least 2 nodes");
  }
  if (noise.meanGapSec < 0.0) fail("noise.meanGapSec must be >= 0");
  if (noise.meanGapSec > 0.0) {
    if (noise.meanDurationSec <= 0.0) {
      fail("noise.meanDurationSec must be > 0 when noise bursts are enabled");
    }
    if (noise.corruptProb <= 0.0 || noise.corruptProb > 1.0) {
      fail("noise.corruptProb must be in (0, 1], got " +
           std::to_string(noise.corruptProb));
    }
  }
  if (surge.meanGapSec < 0.0) fail("surge.meanGapSec must be >= 0");
  if (surge.meanGapSec > 0.0) {
    if (surge.meanDurationSec <= 0.0) {
      fail("surge.meanDurationSec must be > 0 when surges are enabled");
    }
    if (surge.rateMultiplier <= 0.0) {
      fail("surge.rateMultiplier must be > 0, got " +
           std::to_string(surge.rateMultiplier));
    }
  }
  for (std::size_t i = 0; i < scripted.size(); ++i) {
    validateEvent(scripted[i], i, numNodes);
  }
}

namespace {

/// Parse a positive double from `name`; unset/unparsable leaves `out`.
void envDouble(const char* name, double& out) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || v[0] == '\0') return;
  char* end = nullptr;
  const double d = std::strtod(v, &end);
  if (end != v) out = d;
}

void envBool(const char* name, bool& out) {
  if (const char* v = std::getenv(name); v != nullptr && v[0] != '\0') {  // NOLINT(concurrency-mt-unsafe)
    out = v[0] == '1';
  }
}

}  // namespace

FaultPlan FaultPlan::fromEnv() { return fromEnv(FaultPlan{}); }

FaultPlan FaultPlan::fromEnv(FaultPlan base) {
  envDouble("MANET_FAULT_CHURN_FRACTION", base.churn.fraction);
  envDouble("MANET_FAULT_CHURN_UP", base.churn.meanUpTimeSec);
  envDouble("MANET_FAULT_CHURN_DOWN", base.churn.meanDownTimeSec);
  envBool("MANET_FAULT_CHURN_WIPE", base.churn.wipeCachesOnRecovery);
  envDouble("MANET_FAULT_BLACKOUT_GAP", base.blackout.meanGapSec);
  envDouble("MANET_FAULT_BLACKOUT_DURATION", base.blackout.meanDurationSec);
  envBool("MANET_FAULT_BLACKOUT_UNIDIR", base.blackout.unidirectional);
  envBool("MANET_FAULT_BLACKOUT_INRANGE", base.blackout.inRangeOnly);
  envDouble("MANET_FAULT_NOISE_GAP", base.noise.meanGapSec);
  envDouble("MANET_FAULT_NOISE_DURATION", base.noise.meanDurationSec);
  envDouble("MANET_FAULT_NOISE_PROB", base.noise.corruptProb);
  envDouble("MANET_FAULT_SURGE_GAP", base.surge.meanGapSec);
  envDouble("MANET_FAULT_SURGE_DURATION", base.surge.meanDurationSec);
  envDouble("MANET_FAULT_SURGE_MULT", base.surge.rateMultiplier);
  if (const char* v = std::getenv("MANET_FAULT_SEED");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    base.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
  }
  return base;
}

}  // namespace manet::fault
