// Fault-injection plan: what goes wrong, and when.
//
// The paper's only source of route staleness is random-waypoint mobility;
// real MANETs also lose routes to node crashes, jammed or asymmetric links,
// interference bursts, and load spikes. A FaultPlan describes those
// adversities declaratively — a list of scripted events plus four optional
// stochastic generators — and is executed by the FaultInjector (owned by
// the Network) against a dedicated RNG stream, so an all-empty plan leaves
// every run bit-identical to a build without the fault layer.
//
// Fault semantics (full discussion in DESIGN.md "Fault model"):
//  * node crash     — the node's radio neither sends nor receives; queued
//    MAC packets are dropped (reason `node_down`); the protocol stack stays
//    alive and reacts through the normal MAC-timeout paths.
//  * node recover   — the radio comes back; caches optionally wiped
//    (a rebooted node loses its soft state).
//  * link blackout  — a directed pair stops hearing each other (or one
//    direction only: an asymmetric link) for a window; modeled in the
//    Channel, so carrier sense is blind to the blocked sender too.
//  * noise burst    — every frame reception network-wide is corrupted with
//    probability `corruptProb` for a window (interference / jamming).
//  * traffic surge  — every CBR source multiplies its rate for a window.
#pragma once

#include <cstdint>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace manet::fault {

enum class FaultKind : std::uint8_t {
  kNodeCrash,
  kNodeRecover,
  kLinkBlackout,
  kNoiseBurst,
  kTrafficSurge,
};
const char* toString(FaultKind k);

/// One scripted fault. Which fields matter depends on `kind`:
///   kNodeCrash / kNodeRecover — `node`
///   kLinkBlackout             — `node` -> `peer`, `duration`,
///                               `bothDirections`
///   kNoiseBurst               — `duration`, `value` = corruption probability
///   kTrafficSurge             — `duration`, `value` = rate multiplier
struct FaultEvent {
  FaultKind kind = FaultKind::kNodeCrash;
  sim::Time at;
  net::NodeId node = 0;
  net::NodeId peer = 0;
  sim::Time duration;
  double value = 0.0;
  bool bothDirections = true;
};

/// Stochastic node churn: `fraction` of the nodes cycle between up and down
/// states with exponentially distributed up/down times.
struct ChurnSpec {
  double fraction = 0.0;  // 0 disables churn
  double meanUpTimeSec = 30.0;
  double meanDownTimeSec = 10.0;
  bool wipeCachesOnRecovery = true;
};

/// Stochastic link blackouts: every ~`meanGapSec` a random ordered node
/// pair goes deaf for an exponentially distributed window.
struct BlackoutSpec {
  double meanGapSec = 0.0;  // 0 disables blackouts
  double meanDurationSec = 2.0;
  bool unidirectional = false;  // block one direction only (asymmetric link)
  /// Pick the second endpoint among radios currently in range of the first
  /// (via the channel's NeighborIndex) instead of uniformly over all nodes,
  /// so every blackout jams a link that actually exists. A window whose
  /// chosen node has no neighbors is skipped (the generator re-arms).
  bool inRangeOnly = false;
};

/// Stochastic channel-noise bursts: network-wide frame corruption windows.
struct NoiseSpec {
  double meanGapSec = 0.0;  // 0 disables noise bursts
  double meanDurationSec = 1.0;
  double corruptProb = 0.3;
};

/// Stochastic traffic surges: all CBR sources speed up for a window.
struct SurgeSpec {
  double meanGapSec = 0.0;  // 0 disables surges
  double meanDurationSec = 5.0;
  double rateMultiplier = 3.0;
};

struct FaultPlan {
  std::vector<FaultEvent> scripted;
  ChurnSpec churn;
  BlackoutSpec blackout;
  NoiseSpec noise;
  SurgeSpec surge;
  /// Salt mixed into the network's "fault" RNG stream, so the fault pattern
  /// can be varied independently of mobility and traffic.
  std::uint64_t seed = 0;

  /// True when nothing is scripted and every generator is disabled; the
  /// Network then skips constructing an injector entirely (strict no-op).
  bool empty() const;

  /// Fail-fast sanity check against the scenario it will run in. Throws
  /// std::invalid_argument with an actionable message on the first problem.
  void validate(int numNodes, sim::Time horizon) const;

  /// Environment overrides (see README "Fault injection" for the table):
  ///   MANET_FAULT_CHURN_FRACTION / _CHURN_UP / _CHURN_DOWN / _CHURN_WIPE
  ///   MANET_FAULT_BLACKOUT_GAP / _BLACKOUT_DURATION / _BLACKOUT_UNIDIR
  ///   MANET_FAULT_NOISE_GAP / _NOISE_DURATION / _NOISE_PROB
  ///   MANET_FAULT_SURGE_GAP / _SURGE_DURATION / _SURGE_MULT
  ///   MANET_FAULT_SEED
  static FaultPlan fromEnv();
  static FaultPlan fromEnv(FaultPlan base);
};

}  // namespace manet::fault
