#include "src/fault/invariant_checker.h"

#include <cstdlib>

#include "src/core/dsr_agent.h"
#include "src/net/network.h"

namespace manet::fault {

namespace {

std::string timeStr(sim::Time t) {
  // manet-lint: allow(float-time): violation-message formatting only
  return "t=" + std::to_string(t.toSeconds()) + "s";
}

}  // namespace

InvariantChecker::InvariantChecker(std::size_t numNodes)
    : numNodes_(numNodes), down_(numNodes, false) {}

bool InvariantChecker::enabledFromEnv() {
  const char* v = std::getenv("MANET_CHECK");  // NOLINT(concurrency-mt-unsafe)
  return v != nullptr && v[0] == '1';
}

void InvariantChecker::record(const telemetry::TraceRecord& r) {
  using telemetry::TraceEvent;
  ++recordsChecked_;

  // Scheduler time must never run backwards.
  if (r.at < lastAt_) {
    noteViolation("time went backwards: " + timeStr(r.at) + " after " +
                  timeStr(lastAt_) + " (" + toString(r.event) + ")");
  }
  lastAt_ = std::max(lastAt_, r.at);

  // Structural sanity: exactly drop records carry a reason.
  if (r.event == TraceEvent::kPktDrop) {
    if (r.reason == telemetry::DropReason::kNone) {
      noteViolation("drop record without a reason at " + timeStr(r.at));
    }
    ++dropsByReason_[toString(r.reason)];
  } else if (r.reason != telemetry::DropReason::kNone) {
    noteViolation(std::string("non-drop record (") + toString(r.event) +
                  ") carries drop reason " + toString(r.reason));
  }

  // Data-packet lifecycle: events only after exactly one origination.
  if (r.kind == net::PacketKind::kData && r.uid != 0) {
    switch (r.event) {
      case TraceEvent::kPktOriginate:
        ++originated_;
        if (!originatedUids_.insert(r.uid).second) {
          noteViolation("uid " + std::to_string(r.uid) +
                        " originated twice (" + timeStr(r.at) + ")");
        }
        break;
      case TraceEvent::kPktForward:
      case TraceEvent::kPktDeliver:
      case TraceEvent::kPktDrop:
        if (r.event == TraceEvent::kPktDeliver) ++delivered_;
        if (originatedUids_.count(r.uid) == 0) {
          noteViolation(std::string(toString(r.event)) + " of uid " +
                        std::to_string(r.uid) + " before its origination (" +
                        timeStr(r.at) + ")");
        }
        break;
      default:
        break;
    }
  }

  // Fault alternation and down-node silence.
  switch (r.event) {
    case TraceEvent::kNodeCrash:
      ++crashes_;
      if (r.node < numNodes_) {
        if (down_[r.node]) {
          noteViolation("node " + std::to_string(r.node) +
                        " crashed while already down (" + timeStr(r.at) + ")");
        }
        down_[r.node] = true;
      }
      break;
    case TraceEvent::kNodeRecover:
      ++recoveries_;
      if (r.node < numNodes_) {
        if (!down_[r.node]) {
          noteViolation("node " + std::to_string(r.node) +
                        " recovered while already up (" + timeStr(r.at) + ")");
        }
        down_[r.node] = false;
      }
      break;
    case TraceEvent::kLinkBlackout:
      ++blackouts_;
      break;
    case TraceEvent::kNoiseBurst:
      ++noiseBursts_;
      break;
    case TraceEvent::kTrafficSurge:
      ++surges_;
      break;
    case TraceEvent::kPktForward:
    case TraceEvent::kPktDeliver:
      if (r.node < numNodes_ && down_[r.node]) {
        noteViolation("down node " + std::to_string(r.node) + " " +
                      toString(r.event) + "ed a packet (" + timeStr(r.at) +
                      "); its radio should be off");
      }
      break;
    default:
      break;
  }
}

void InvariantChecker::expectEq(std::uint64_t traced, std::uint64_t counted,
                                const char* what) {
  if (traced != counted) {
    noteViolation(std::string(what) + ": " + std::to_string(traced) +
                  " traced vs " + std::to_string(counted) + " counted");
  }
}

void InvariantChecker::finalCheck(const metrics::Metrics& m) {
  using telemetry::DropReason;
  // Packet conservation: every counted origination/delivery/drop has its
  // trace record, reason by reason — counters and traces cannot drift.
  expectEq(originated_, m.dataOriginated, "originations");
  expectEq(delivered_, m.dataDelivered, "deliveries");
  const auto drops = [this](DropReason r) {
    const auto it = dropsByReason_.find(toString(r));
    return it == dropsByReason_.end() ? std::uint64_t{0} : it->second;
  };
  expectEq(drops(DropReason::kSendBufferTimeout), m.dropSendBufferTimeout,
           "send-buffer-timeout drops");
  expectEq(drops(DropReason::kSendBufferOverflow), m.dropSendBufferOverflow,
           "send-buffer-overflow drops");
  expectEq(drops(DropReason::kIfqFull), m.dropIfqFull, "ifq-full drops");
  expectEq(drops(DropReason::kLinkFailNoSalvage), m.dropLinkFailNoSalvage,
           "link-fail drops");
  expectEq(drops(DropReason::kNegativeCache), m.dropNegativeCache,
           "negative-cache drops");
  expectEq(drops(DropReason::kTtlExpired), m.dropTtlExpired,
           "ttl-expired drops");
  expectEq(drops(DropReason::kMacDuplicate), m.dropMacDuplicate,
           "mac-duplicate drops");
  expectEq(drops(DropReason::kNodeDown), m.dropNodeDown, "node-down drops");
  std::uint64_t totalTraced = 0;
  for (const auto& [reason, n] : dropsByReason_) totalTraced += n;
  expectEq(totalTraced, m.totalDropped(), "total drops");
  // Fault events reconcile too.
  expectEq(crashes_, m.faultNodeCrashes, "node crashes");
  expectEq(recoveries_, m.faultNodeRecoveries, "node recoveries");
  expectEq(blackouts_, m.faultLinkBlackouts, "link blackouts");
  expectEq(noiseBursts_, m.faultNoiseBursts, "noise bursts");
  expectEq(surges_, m.faultTrafficSurges, "traffic surges");
}

void checkCacheConsistency(net::Network& network, InvariantChecker& checker) {
  const sim::Time now = network.scheduler().now();
  for (std::size_t i = 0; i < network.size(); ++i) {
    net::Node& node = network.node(static_cast<net::NodeId>(i));
    if (node.protocol() != net::Protocol::kDsr) continue;
    core::DsrAgent& dsr = node.dsr();
    const core::NegativeCache& neg = dsr.negativeCache();
    dsr.routeCache().forEachRoute([&](std::span<const net::NodeId> route) {
      for (std::size_t k = 0; k + 1 < route.size(); ++k) {
        const net::LinkId link{route[k], route[k + 1]};
        if (neg.peek(link, now)) {
          checker.noteViolation(
              "node " + std::to_string(node.id()) + " caches link " +
              std::to_string(link.from) + "->" + std::to_string(link.to) +
              " while it is negatively cached (" + timeStr(now) +
              "): mutual exclusion broken");
        }
      }
    });
  }
}

}  // namespace manet::fault
