// Opt-in simulator hardening: cross-checks that must hold in ANY run,
// faulted or not, verified from the trace stream while it is produced.
//
// The checker is a TraceSink, so installing it turns tracing on and lets it
// observe every record the hooks emit. It verifies:
//  * time monotonicity — records never go backwards (a scheduler or clock
//    bug would);
//  * data-packet lifecycle — a data packet is forwarded/delivered/dropped
//    only after exactly one origination record for its uid;
//  * fault alternation — a node never crashes twice without recovering in
//    between (and vice versa), and a down node never forwards or delivers
//    (its radio is off);
//  * structural sanity — drop records carry a reason, nothing else does.
// It deliberately does NOT require one terminal event per uid: a lost MAC
// ACK legitimately yields both a downstream delivery and an upstream
// salvage-drop of the same packet.
//
// finalCheck() then reconciles the stream against the run's Metrics —
// every counted drop/origination/delivery/fault has its record — which is
// the packet-conservation property: counters and traces cannot drift apart.
//
// checkCacheConsistency() is a polled companion (the Scenario runs it every
// simulated second when checks are on): no link may simultaneously be in a
// node's route cache and its negative cache (the paper's mutual-exclusion
// rule for technique 3).
//
// Violations are collected, not thrown, so a post-mortem sees all of them;
// Scenario::run() throws at the end of a checked run if any accumulated.
// Enable per-config (ScenarioConfig::invariantChecks) or globally with the
// MANET_CHECK=1 environment knob.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/telemetry/trace.h"

namespace manet::net {
class Network;
}

namespace manet::fault {

class InvariantChecker final : public telemetry::TraceSink {
 public:
  explicit InvariantChecker(std::size_t numNodes);

  void record(const telemetry::TraceRecord& r) override;

  /// End-of-run reconciliation against the aggregate counters.
  void finalCheck(const metrics::Metrics& m);

  /// External checks (e.g. checkCacheConsistency) report through this.
  void noteViolation(std::string what) {
    violations_.push_back(std::move(what));
  }

  const std::vector<std::string>& violations() const { return violations_; }
  std::uint64_t recordsChecked() const { return recordsChecked_; }

  /// True when the MANET_CHECK environment knob is "1".
  static bool enabledFromEnv();

 private:
  void expectEq(std::uint64_t traced, std::uint64_t counted,
                const char* what);

  std::size_t numNodes_;
  sim::Time lastAt_ = sim::Time::zero();
  std::vector<bool> down_;
  std::unordered_set<std::uint64_t> originatedUids_;
  std::map<std::string, std::uint64_t> dropsByReason_;
  std::uint64_t originated_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t blackouts_ = 0;
  std::uint64_t noiseBursts_ = 0;
  std::uint64_t surges_ = 0;
  std::uint64_t recordsChecked_ = 0;
  std::vector<std::string> violations_;
};

/// Sweep every DSR node for route-cache/negative-cache mutual-exclusion
/// breaches, reporting violations into `checker`. Read-only.
void checkCacheConsistency(net::Network& network, InvariantChecker& checker);

}  // namespace manet::fault
