#include "src/fault/fault_injector.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/net/network.h"
#include "src/phy/neighbor_index.h"
#include "src/phy/radio.h"
#include "src/traffic/cbr.h"

namespace manet::fault {

FaultInjector::FaultInjector(net::Network& network, FaultPlan plan,
                             sim::Time horizon)
    : net_(network),
      plan_(std::move(plan)),
      horizon_(horizon),
      rng_(network.rng().stream("fault", plan_.seed)),
      noiseRng_(network.rng().stream("fault-noise", plan_.seed)),
      down_(network.size(), false) {
  scheduleScripted();
  if (plan_.churn.fraction > 0.0) startChurn();
  if (plan_.blackout.meanGapSec > 0.0) {
    armBlackoutGenerator(expDuration(plan_.blackout.meanGapSec));
  }
  if (plan_.noise.meanGapSec > 0.0) {
    armNoiseGenerator(expDuration(plan_.noise.meanGapSec));
  }
  if (plan_.surge.meanGapSec > 0.0) {
    armSurgeGenerator(expDuration(plan_.surge.meanGapSec));
  }
}

sim::Scheduler& FaultInjector::sched() { return net_.scheduler(); }

sim::Time FaultInjector::expDuration(double meanSec) {
  // manet-lint: allow(float-time): exponential draw comes off the dedicated
  // fault RNG stream; fixed-op conversion, same seed -> same Time.
  return std::max(sim::Time::fromSeconds(rng_.exponential(meanSec)),
                  sim::Time::millis(1));
}

// ------------------------------------------------------------- scripted

void FaultInjector::scheduleScripted() {
  for (const FaultEvent& ev : plan_.scripted) {
    sched().scheduleAt(
        ev.at,
        [this, ev] {
          switch (ev.kind) {
            case FaultKind::kNodeCrash:
              crash(ev.node);
              break;
            case FaultKind::kNodeRecover:
              recover(ev.node, plan_.churn.wipeCachesOnRecovery);
              break;
            case FaultKind::kLinkBlackout:
              beginBlackout(ev.node, ev.peer, ev.duration,
                            ev.bothDirections);
              break;
            case FaultKind::kNoiseBurst:
              beginNoise(ev.duration, ev.value);
              break;
            case FaultKind::kTrafficSurge:
              beginSurge(ev.duration, ev.value);
              break;
          }
        },
        prof::Category::kFault);
  }
}

// ---------------------------------------------------------------- churn

void FaultInjector::startChurn() {
  const auto n = static_cast<std::size_t>(net_.size());
  auto count = static_cast<std::size_t>(
      std::lround(plan_.churn.fraction * static_cast<double>(n)));
  count = std::clamp<std::size_t>(count, 1, n);
  // Partial Fisher-Yates: pick `count` distinct churn nodes.
  std::vector<net::NodeId> ids(n);
  std::iota(ids.begin(), ids.end(), net::NodeId{0});
  for (std::size_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(rng_.uniformInt(
        static_cast<std::int64_t>(i), static_cast<std::int64_t>(n - 1)));
    std::swap(ids[i], ids[j]);
    const net::NodeId id = ids[i];
    sched().scheduleAt(
        expDuration(plan_.churn.meanUpTimeSec),
        [this, id] { churnCrash(id); }, prof::Category::kFault);
  }
}

void FaultInjector::churnCrash(net::NodeId id) {
  crash(id);
  const sim::Time at =
      sched().now() + expDuration(plan_.churn.meanDownTimeSec);
  if (at < horizon_) {
    sched().scheduleAt(
        at, [this, id] { churnRecover(id); }, prof::Category::kFault);
  }
}

void FaultInjector::churnRecover(net::NodeId id) {
  recover(id, plan_.churn.wipeCachesOnRecovery);
  const sim::Time at = sched().now() + expDuration(plan_.churn.meanUpTimeSec);
  if (at < horizon_) {
    sched().scheduleAt(
        at, [this, id] { churnCrash(id); }, prof::Category::kFault);
  }
}

// ----------------------------------------------------------- generators

void FaultInjector::armBlackoutGenerator(sim::Time at) {
  if (at >= horizon_) return;
  sched().scheduleAt(
      at,
      [this] {
        const auto n = static_cast<std::int64_t>(net_.size());
        const auto from = static_cast<net::NodeId>(rng_.uniformInt(0, n - 1));
        net::NodeId to = from;
        if (plan_.blackout.inRangeOnly) {
          // Jam a link that actually exists: query the channel's neighbor
          // index for radios currently audible from `from` (visited in id
          // order, so the candidate list is deterministic) and pick one.
          const phy::NeighborIndex& index = net_.channel().neighborIndex();
          candidates_.clear();
          index.forEachInRange(
              index.positionAt(from, sched().now()),
              net_.channel().config().rangeMeters, sched().now(), nullptr,
              [&](phy::Radio& r, double) {
                if (r.id() != from) candidates_.push_back(r.id());
              });
          if (!candidates_.empty()) {
            to = candidates_[static_cast<std::size_t>(rng_.uniformInt(
                0, static_cast<std::int64_t>(candidates_.size()) - 1))];
          }
        } else {
          do {
            to = static_cast<net::NodeId>(rng_.uniformInt(0, n - 1));
          } while (to == from);
        }
        const sim::Time dur = expDuration(plan_.blackout.meanDurationSec);
        // `to == from` means no in-range peer existed: skip this window.
        if (to != from) {
          beginBlackout(from, to, dur, !plan_.blackout.unidirectional);
        }
        // Next window opens after this one closes (windows never overlap).
        armBlackoutGenerator(sched().now() + dur +
                             expDuration(plan_.blackout.meanGapSec));
      },
      prof::Category::kFault);
}

void FaultInjector::armNoiseGenerator(sim::Time at) {
  if (at >= horizon_) return;
  sched().scheduleAt(
      at,
      [this] {
        const sim::Time dur = expDuration(plan_.noise.meanDurationSec);
        beginNoise(dur, plan_.noise.corruptProb);
        armNoiseGenerator(sched().now() + dur +
                          expDuration(plan_.noise.meanGapSec));
      },
      prof::Category::kFault);
}

void FaultInjector::armSurgeGenerator(sim::Time at) {
  if (at >= horizon_) return;
  sched().scheduleAt(
      at,
      [this] {
        const sim::Time dur = expDuration(plan_.surge.meanDurationSec);
        beginSurge(dur, plan_.surge.rateMultiplier);
        armSurgeGenerator(sched().now() + dur +
                          expDuration(plan_.surge.meanGapSec));
      },
      prof::Category::kFault);
}

// -------------------------------------------------------------- actions

void FaultInjector::crash(net::NodeId id) {
  if (down_.at(id)) return;  // scripted/churn overlap: already down
  down_[id] = true;
  net::Node& node = net_.node(id);
  node.radio().setUp(false);
  node.macLayer().flushQueue();
  ++net_.metrics().faultNodeCrashes;
  traceFault(telemetry::TraceEvent::kNodeCrash, id, 0, 0, 0);
}

void FaultInjector::recover(net::NodeId id, bool wipeCaches) {
  if (!down_.at(id)) return;
  down_[id] = false;
  net::Node& node = net_.node(id);
  node.radio().setUp(true);
  const bool wiped = wipeCaches && node.protocol() == net::Protocol::kDsr;
  if (wiped) node.dsr().wipeCaches();
  ++net_.metrics().faultNodeRecoveries;
  traceFault(telemetry::TraceEvent::kNodeRecover, id, 0, 0, wiped ? 1 : 0);
}

void FaultInjector::beginBlackout(net::NodeId from, net::NodeId to,
                                  sim::Time duration, bool bothDirections) {
  const sim::Time now = sched().now();
  net_.channel().addLinkBlackout(from, to, now, now + duration);
  if (bothDirections) {
    net_.channel().addLinkBlackout(to, from, now, now + duration);
  }
  ++net_.metrics().faultLinkBlackouts;
  traceFault(telemetry::TraceEvent::kLinkBlackout, from, from, to,
             duration.ns());
}

void FaultInjector::beginNoise(sim::Time duration, double corruptProb) {
  if (noiseActive_) return;  // overlapping scripted bursts: keep the first
  noiseActive_ = true;
  // Radio-wide sweep through the neighbor index (attach == id order).
  net_.channel().neighborIndex().forEachRadio(
      [this, corruptProb](phy::Radio& r) {
        r.setNoise(corruptProb, &noiseRng_);
      });
  ++net_.metrics().faultNoiseBursts;
  traceFault(telemetry::TraceEvent::kNoiseBurst, 0, 0, 0, duration.ns());
  sched().scheduleAfter(
      duration, [this] { endNoise(); }, prof::Category::kFault);
}

void FaultInjector::endNoise() {
  net_.channel().neighborIndex().forEachRadio(
      [](phy::Radio& r) { r.setNoise(0.0, nullptr); });
  noiseActive_ = false;
}

void FaultInjector::beginSurge(sim::Time duration, double multiplier) {
  if (surgeActive_) return;
  surgeActive_ = true;
  for (traffic::CbrSource* s : sources_) s->setRateMultiplier(multiplier);
  ++net_.metrics().faultTrafficSurges;
  traceFault(telemetry::TraceEvent::kTrafficSurge, 0, 0, 0, duration.ns());
  sched().scheduleAfter(
      duration, [this] { endSurge(); }, prof::Category::kFault);
}

void FaultInjector::endSurge() {
  for (traffic::CbrSource* s : sources_) s->setRateMultiplier(1.0);
  surgeActive_ = false;
}

void FaultInjector::traceFault(telemetry::TraceEvent event, net::NodeId node,
                               net::NodeId src, net::NodeId dst,
                               std::int64_t detail) {
  telemetry::Tracer& tracer = net_.tracer();
  if (!tracer.enabled()) return;
  telemetry::TraceRecord r;
  r.at = sched().now();
  r.event = event;
  r.node = node;
  r.src = src;
  r.dst = dst;
  r.detail = detail;
  tracer.emit(r);
}

}  // namespace manet::fault
