#include "src/metrics/oracle.h"

#include "src/phy/neighbor_index.h"

namespace manet::metrics {

bool LinkOracle::linkValid(net::NodeId a, net::NodeId b, sim::Time t) const {
  if (index_ != nullptr) return index_->inRangeAt(a, b, t, range_);
  return distance(positions_(a, t), positions_(b, t)) <= range_;
}

bool LinkOracle::routeValid(std::span<const net::NodeId> hops,
                            sim::Time t) const {
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    if (!linkValid(hops[i], hops[i + 1], t)) return false;
  }
  return true;
}

}  // namespace manet::metrics
