// Run-wide measurement counters and the derived metrics the paper reports.
//
// The paper's routing metrics:
//  * packet delivery fraction  — delivered / originated (or throughput);
//  * average end-to-end delay  — buffering + queueing + MAC + transfer;
//  * normalized overhead       — hop-wise transmissions of ALL overhead
//    packets (RREQ/RREP/RERR and MAC RTS/CTS/ACK) per delivered data packet.
// And its cache-correctness metrics:
//  * percentage of good replies        — route replies received at sources
//    whose reported route is actually valid (checked by the link oracle);
//  * percentage of invalid cached routes — cache hits that handed out a
//    route containing at least one dead link.
#pragma once

#include <array>
#include <cstdint>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace manet::metrics {

struct Metrics {
  // ---- application-level ----
  std::uint64_t dataOriginated = 0;
  std::uint64_t dataDelivered = 0;
  std::uint64_t bytesDelivered = 0;
  double delaySumSec = 0.0;

  // ---- drop accounting ----
  std::uint64_t dropSendBufferTimeout = 0;  // waited >30 s for a route
  std::uint64_t dropSendBufferOverflow = 0;
  std::uint64_t dropIfqFull = 0;       // MAC interface queue overflow
  std::uint64_t dropLinkFailNoSalvage = 0;
  std::uint64_t dropNegativeCache = 0;  // dropped by the negative cache rule
  std::uint64_t dropTtlExpired = 0;
  std::uint64_t dropMacDuplicate = 0;
  std::uint64_t dropNodeDown = 0;  // flushed from MAC queue at node crash

  // ---- hop-wise overhead transmissions ----
  std::uint64_t rreqTx = 0;
  std::uint64_t rrepTx = 0;
  std::uint64_t rerrTx = 0;
  std::uint64_t rtsTx = 0;
  std::uint64_t ctsTx = 0;
  std::uint64_t ackTx = 0;
  std::uint64_t dataFrameTx = 0;  // informational (not overhead)
  std::uint64_t ctsTimeouts = 0;  // RTS sent, no CTS back
  std::uint64_t ackTimeouts = 0;  // DATA sent, no ACK back
  std::uint64_t rtsIgnoredBusy = 0;  // RTS for us refused (NAV/mid-exchange)

  // ---- cache behaviour ----
  std::uint64_t cacheHits = 0;         // route served from a cache (source
                                       // send, salvage, or cached reply)
  std::uint64_t invalidCacheHits = 0;  // ...where the route was stale
  /// invalidCacheHits broken down by how the serving entry was learned
  /// (indexed by net::RouteOrigin) — the causal attribution behind the
  /// paper's invalid-cached-routes outcome counter. Index 0 (kNone) counts
  /// hits on entries inserted without provenance.
  std::array<std::uint64_t, net::kNumRouteOrigins> invalidCacheHitsByOrigin{};
  std::uint64_t repliesReceived = 0;   // RREPs arriving at request origins
  std::uint64_t goodRepliesReceived = 0;
  std::uint64_t cacheRepliesGenerated = 0;
  std::uint64_t targetRepliesGenerated = 0;
  std::uint64_t gratuitousRepliesGenerated = 0;
  /// Freshness-tagging extension: replies discarded as provably stale.
  std::uint64_t staleRepliesIgnored = 0;

  // ---- protocol events ----
  std::uint64_t routeDiscoveriesStarted = 0;
  std::uint64_t nonPropRequestsSent = 0;
  std::uint64_t floodRequestsSent = 0;
  std::uint64_t linkBreaksDetected = 0;
  /// Breaks reported by MAC retry exhaustion where the link was in fact
  /// still geometrically up (congestion-induced false positives).
  std::uint64_t fakeLinkBreaks = 0;
  std::uint64_t salvageAttempts = 0;
  std::uint64_t expiredLinks = 0;       // pruned by timer-based expiry
  std::uint64_t rerrWideRebroadcasts = 0;
  std::uint64_t negCacheInsertions = 0;

  // ---- injected faults (src/fault/; all zero without a FaultPlan) ----
  std::uint64_t faultNodeCrashes = 0;
  std::uint64_t faultNodeRecoveries = 0;
  std::uint64_t faultLinkBlackouts = 0;
  std::uint64_t faultNoiseBursts = 0;
  std::uint64_t faultTrafficSurges = 0;

  // ---- derived metrics (paper's plots) ----
  /// Sum of every drop counter (one packet may be counted at most once:
  /// each drop site increments exactly one reason).
  std::uint64_t totalDropped() const {
    return dropSendBufferTimeout + dropSendBufferOverflow + dropIfqFull +
           dropLinkFailNoSalvage + dropNegativeCache + dropTtlExpired +
           dropMacDuplicate + dropNodeDown;
  }
  double packetDeliveryFraction() const {
    return dataOriginated == 0
               ? 0.0
               : static_cast<double>(dataDelivered) /
                     static_cast<double>(dataOriginated);
  }
  double avgDelaySec() const {
    return dataDelivered == 0
               ? 0.0
               : delaySumSec / static_cast<double>(dataDelivered);
  }
  std::uint64_t overheadTx() const {
    return rreqTx + rrepTx + rerrTx + rtsTx + ctsTx + ackTx;
  }
  double normalizedOverhead() const {
    return dataDelivered == 0 ? 0.0
                              : static_cast<double>(overheadTx()) /
                                    static_cast<double>(dataDelivered);
  }
  double throughputKbps(sim::Time duration) const {
    const double secs = duration.toSeconds();
    return secs <= 0.0 ? 0.0
                       : static_cast<double>(bytesDelivered) * 8.0 / 1000.0 /
                             secs;
  }
  double goodReplyPct() const {
    return repliesReceived == 0
               ? 0.0
               : 100.0 * static_cast<double>(goodRepliesReceived) /
                     static_cast<double>(repliesReceived);
  }
  double invalidCacheHitPct() const {
    return cacheHits == 0 ? 0.0
                          : 100.0 * static_cast<double>(invalidCacheHits) /
                                static_cast<double>(cacheHits);
  }

  /// Element-wise sum (aggregating over replications is done on derived
  /// metrics instead; this is for merging per-node collectors if needed).
  void add(const Metrics& o);
};

}  // namespace manet::metrics
