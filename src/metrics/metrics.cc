#include "src/metrics/metrics.h"

namespace manet::metrics {

void Metrics::add(const Metrics& o) {
  dataOriginated += o.dataOriginated;
  dataDelivered += o.dataDelivered;
  bytesDelivered += o.bytesDelivered;
  delaySumSec += o.delaySumSec;
  dropSendBufferTimeout += o.dropSendBufferTimeout;
  dropSendBufferOverflow += o.dropSendBufferOverflow;
  dropIfqFull += o.dropIfqFull;
  dropLinkFailNoSalvage += o.dropLinkFailNoSalvage;
  dropNegativeCache += o.dropNegativeCache;
  dropTtlExpired += o.dropTtlExpired;
  dropMacDuplicate += o.dropMacDuplicate;
  dropNodeDown += o.dropNodeDown;
  rreqTx += o.rreqTx;
  rrepTx += o.rrepTx;
  rerrTx += o.rerrTx;
  rtsTx += o.rtsTx;
  ctsTx += o.ctsTx;
  ackTx += o.ackTx;
  dataFrameTx += o.dataFrameTx;
  ctsTimeouts += o.ctsTimeouts;
  ackTimeouts += o.ackTimeouts;
  rtsIgnoredBusy += o.rtsIgnoredBusy;
  cacheHits += o.cacheHits;
  invalidCacheHits += o.invalidCacheHits;
  for (std::size_t i = 0; i < invalidCacheHitsByOrigin.size(); ++i) {
    invalidCacheHitsByOrigin[i] += o.invalidCacheHitsByOrigin[i];
  }
  repliesReceived += o.repliesReceived;
  goodRepliesReceived += o.goodRepliesReceived;
  cacheRepliesGenerated += o.cacheRepliesGenerated;
  targetRepliesGenerated += o.targetRepliesGenerated;
  gratuitousRepliesGenerated += o.gratuitousRepliesGenerated;
  staleRepliesIgnored += o.staleRepliesIgnored;
  routeDiscoveriesStarted += o.routeDiscoveriesStarted;
  nonPropRequestsSent += o.nonPropRequestsSent;
  floodRequestsSent += o.floodRequestsSent;
  linkBreaksDetected += o.linkBreaksDetected;
  fakeLinkBreaks += o.fakeLinkBreaks;
  salvageAttempts += o.salvageAttempts;
  expiredLinks += o.expiredLinks;
  rerrWideRebroadcasts += o.rerrWideRebroadcasts;
  negCacheInsertions += o.negCacheInsertions;
  faultNodeCrashes += o.faultNodeCrashes;
  faultNodeRecoveries += o.faultNodeRecoveries;
  faultLinkBlackouts += o.faultLinkBlackouts;
  faultNoiseBursts += o.faultNoiseBursts;
  faultTrafficSurges += o.faultTrafficSurges;
}

}  // namespace manet::metrics
