// Ground-truth link oracle for cache-correctness metrics.
//
// "Good replies" and "invalid cached routes" require knowing whether a route
// was *actually* usable at the instant a cache handed it out. The oracle
// answers that from node positions — information only the simulator has.
// It is measurement-only: protocol code never consults it.
#pragma once

#include <functional>
#include <span>

#include "src/net/packet.h"
#include "src/sim/time.h"
#include "src/util/vec2.h"

namespace manet::phy {
class NeighborIndex;
}

namespace manet::metrics {

class LinkOracle {
 public:
  using PositionFn = std::function<Vec2(net::NodeId, sim::Time)>;

  /// Position-function oracle (tests, synthetic topologies).
  LinkOracle(PositionFn positions, double rangeMeters)
      : positions_(std::move(positions)), range_(rangeMeters) {}

  /// Index-backed oracle: pairwise checks go through the channel's
  /// NeighborIndex — the same query API transmissions are delivered through
  /// — instead of a bespoke position callback. The index must outlive the
  /// oracle and have every queried radio attached.
  LinkOracle(const phy::NeighborIndex& index, double rangeMeters)
      : index_(&index), range_(rangeMeters) {}

  /// True if a and b are within radio range of each other at time t.
  bool linkValid(net::NodeId a, net::NodeId b, sim::Time t) const;

  /// True if every consecutive hop pair in `hops` is a valid link at t.
  bool routeValid(std::span<const net::NodeId> hops, sim::Time t) const;

 private:
  const phy::NeighborIndex* index_ = nullptr;
  PositionFn positions_;
  double range_;
};

}  // namespace manet::metrics
