#include "src/prof/hotspot.h"

#include "src/util/thread_annotations.h"

namespace manet::prof {

const char* toString(AllocSite s) {
  switch (s) {
    case AllocSite::kPacket: return "packet";
    case AllocSite::kEvent: return "event";
    case AllocSite::kTraceRecord: return "trace_record";
  }
  return "?";
}

// One tracker slot per thread so parallel sweep workers (one scenario and
// profiler per thread) tally independently; the owning Profiler installs and
// uninstalls it, and a null slot makes every record path a no-op.
// manet-lint: allow(shared-mutable): thread-local profiler hook, installed
// per run; tallies are observational only and never feed back into
// simulation decisions.
thread_local AllocTracker* AllocTracker::t_current = nullptr;

}  // namespace manet::prof
