// Allocation-site observability: count / bytes / high-water tallies at the
// simulator's three hot allocation sites (packets, scheduler events, trace
// records), feeding the arena/pool sizing decisions of the engine overhaul
// (ROADMAP item 1).
//
// Contract (same as the profiler's):
//  * Zero overhead when off: every record path is one thread-local load plus
//    one null check; no tracker installed means no work at all.
//  * Zero allocations when on: fixed-size per-site arrays only.
//  * Deterministic: counters are driven purely by simulation behaviour
//    (allocation order), never by the wall clock, so two runs of the same
//    seed produce identical tallies — `manet_prof --diff` relies on this.
//
// The tracker is installed per thread by the owning Profiler (parallel sweep
// workers each run their own scenario, profiler and tracker), and
// uninstalled by the Profiler destructor before the network tears down, so
// teardown-time releases degrade to no-ops instead of touching a dead
// tracker.
#pragma once

#include <array>
#include <cstdint>

#include "src/util/thread_annotations.h"

namespace manet::prof {

/// The three allocation sites the future arenas will replace.
enum class AllocSite : std::uint8_t {
  kPacket,       // net::Packet::make / clone (shared_ptr control + payload)
  kEvent,        // sim::Scheduler heap entries
  kTraceRecord,  // telemetry::Tracer::emit record copies (+ note strings)
};
inline constexpr std::size_t kNumAllocSites = 3;
const char* toString(AllocSite s);

/// Tallies for one allocation site.
struct AllocSiteStats {
  std::uint64_t count = 0;      // total allocations observed
  std::uint64_t bytes = 0;      // total bytes (unit size x count + extras)
  std::uint64_t live = 0;       // currently outstanding (count - releases)
  std::uint64_t highWater = 0;  // peak outstanding
};

/// Per-thread allocation tally. Sites record through the canonical guard
///   if (auto* a = prof::AllocTracker::current()) a->recordAlloc(...);
/// which the `hotspot-guard` lint rule enforces at every call site.
class AllocTracker {
 public:
  static AllocTracker* current() { return t_current; }

  /// One allocation at `s`: unit bytes (set by the installer, which knows
  /// the concrete types) plus `extraBytes` for variable-size tails.
  void recordAlloc(AllocSite s, std::uint64_t extraBytes = 0) {
    AllocSiteStats& st = sites_[static_cast<std::size_t>(s)];
    ++st.count;
    st.bytes += unitBytes_[static_cast<std::size_t>(s)] + extraBytes;
    ++st.live;
    if (st.live > st.highWater) st.highWater = st.live;
  }

  /// One release at `s`. Saturates at zero: stack-constructed objects that
  /// were never recorded (tracker installed mid-lifetime) must not wrap.
  void releaseAlloc(AllocSite s) {
    AllocSiteStats& st = sites_[static_cast<std::size_t>(s)];
    if (st.live > 0) --st.live;
  }

  /// Unit size per site, registered once at install time by the layer that
  /// can see the concrete types (prof cannot include net/sim/telemetry).
  void setUnitBytes(AllocSite s, std::uint64_t bytes) {
    unitBytes_[static_cast<std::size_t>(s)] = bytes;
  }

  const AllocSiteStats& site(AllocSite s) const {
    return sites_[static_cast<std::size_t>(s)];
  }
  const std::array<AllocSiteStats, kNumAllocSites>& sites() const {
    return sites_;
  }

  /// Install/uninstall this thread's tracker (Profiler ctor/dtor only).
  static void install(AllocTracker* t) { t_current = t; }
  static void uninstallIf(AllocTracker* t) {
    if (t_current == t) t_current = nullptr;
  }

 private:
  // manet-lint: allow(shared-mutable): thread-local profiler hook, installed
  // per-Scenario by the Profiler ctor and cleared by its dtor; never read by
  // simulation decisions, only written to by observational tallies.
  static thread_local AllocTracker* t_current;
  std::array<AllocSiteStats, kNumAllocSites> sites_{};
  std::array<std::uint64_t, kNumAllocSites> unitBytes_{};
};

/// Embeddable lifetime hook: a member of this type makes every construction
/// (including copies — e.g. Packet::clone) record one allocation and every
/// destruction release it, giving exact live/high-water tracking without
/// hand-written constructors on the host type.
class AllocToken {
 public:
  explicit AllocToken(AllocSite s) : site_(s) {
    if (AllocTracker* a = AllocTracker::current()) a->recordAlloc(site_);
  }
  AllocToken(const AllocToken& o) : site_(o.site_) {
    if (AllocTracker* a = AllocTracker::current()) a->recordAlloc(site_);
  }
  AllocToken& operator=(const AllocToken&) { return *this; }  // tally is per
                                                              // object, not
                                                              // per value
  ~AllocToken() {
    if (AllocTracker* a = AllocTracker::current()) a->releaseAlloc(site_);
  }

 private:
  AllocSite site_;
};

}  // namespace manet::prof
