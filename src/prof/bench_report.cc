#include "src/prof/bench_report.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/json.h"

namespace manet::prof {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void kvNum(std::string& out, const char* key, double v, bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9g", first ? "" : ",", key, v);
  out += buf;
}

void kvU64(std::string& out, const char* key, std::uint64_t v,
           bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                v);
  out += buf;
}

std::uint64_t u64At(const util::JsonValue& obj, std::string_view key) {
  const double d = obj.numberAt(key, 0.0);
  return d <= 0.0 ? 0 : static_cast<std::uint64_t>(d);
}

void appendBuckets(std::string& out, const char* key,
                   const std::vector<HistBucket>& buckets) {
  out += ",\"";
  out += key;
  out += "\":[";
  char buf[128];
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s[%" PRIu64 ",%" PRIu64 ",%" PRIu64 "]", i > 0 ? "," : "",
                  buckets[i].low, buckets[i].high, buckets[i].count);
    out += buf;
  }
  out += ']';
}

std::vector<HistBucket> parseBuckets(const util::JsonValue& obj,
                                     std::string_view key) {
  std::vector<HistBucket> out;
  const util::JsonValue* arr = obj.find(key);
  if (arr == nullptr || !arr->isArray()) return out;
  for (const util::JsonValue& row : arr->asArray()) {
    if (!row.isArray() || row.asArray().size() != 3) continue;
    const auto& v = row.asArray();
    out.push_back(HistBucket{
        static_cast<std::uint64_t>(v[0].asNumber()),
        static_cast<std::uint64_t>(v[1].asNumber()),
        static_cast<std::uint64_t>(v[2].asNumber())});
  }
  return out;
}

void appendHotspot(std::string& out, const BenchScenario& s) {
  char buf[256];
  out += ",\"hotspot\":{\"top_nodes\":[";
  for (std::size_t i = 0; i < s.topNodes.size(); ++i) {
    const BenchTopNode& n = s.topNodes[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"node\":%u,\"x\":%.9g,\"y\":%.9g"
                  ",\"activations\":%" PRIu64 ",\"frames_heard\":%" PRIu64
                  ",\"self_seconds\":%.9g}",
                  i > 0 ? "," : "", n.node, n.x, n.y, n.activations,
                  n.framesHeard, n.selfSeconds);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"fanout\":{\"transmissions\":%" PRIu64
                ",\"radios_examined\":%" PRIu64
                ",\"radios_in_range\":%" PRIu64 ",\"max_in_range\":%" PRIu64
                ",\"p50\":%.9g,\"p90\":%.9g,\"p99\":%.9g",
                s.fanout.transmissions, s.fanout.radiosExamined,
                s.fanout.radiosInRange, s.fanout.maxInRange, s.fanout.p50,
                s.fanout.p90, s.fanout.p99);
  out += buf;
  appendBuckets(out, "buckets", s.fanout.buckets);
  std::snprintf(buf, sizeof(buf),
                "},\"queue\":{\"scheduled\":%" PRIu64
                ",\"zero_horizon\":%" PRIu64 ",\"max_horizon_ns\":%" PRIu64
                ",\"horizon_p50_ns\":%.9g,\"horizon_p90_ns\":%.9g"
                ",\"horizon_p99_ns\":%.9g",
                s.queue.scheduled, s.queue.zeroHorizon, s.queue.maxHorizonNs,
                s.queue.horizonP50Ns, s.queue.horizonP90Ns,
                s.queue.horizonP99Ns);
  out += buf;
  appendBuckets(out, "horizon_buckets", s.queue.horizonBuckets);
  std::snprintf(buf, sizeof(buf),
                ",\"depth_peak\":%" PRIu64
                ",\"depth_mean\":%.9g,\"depth_samples\":[",
                s.queue.depthPeak, s.queue.depthMean);
  out += buf;
  for (std::size_t i = 0; i < s.queue.depthSamples.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s[%" PRId64 ",%" PRIu64 "]",
                  i > 0 ? "," : "", s.queue.depthSamples[i].simNs,
                  s.queue.depthSamples[i].depth);
    out += buf;
  }
  out += "]},\"alloc\":{";
  for (std::size_t a = 0; a < kNumAllocSites; ++a) {
    const AllocSiteStats& st = s.alloc[a];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"bytes\":%" PRIu64
                  ",\"live\":%" PRIu64 ",\"high_water\":%" PRIu64 "}",
                  a > 0 ? "," : "", toString(static_cast<AllocSite>(a)),
                  st.count, st.bytes, st.live, st.highWater);
    out += buf;
  }
  out += "}}";
}

void parseHotspot(const util::JsonValue& hv, BenchScenario& s) {
  s.hasHotspot = true;
  if (const util::JsonValue* nodes = hv.find("top_nodes");
      nodes != nullptr && nodes->isArray()) {
    for (const util::JsonValue& nv : nodes->asArray()) {
      if (!nv.isObject()) continue;
      BenchTopNode n;
      n.node = static_cast<std::uint32_t>(nv.numberAt("node", 0.0));
      n.x = nv.numberAt("x", 0.0);
      n.y = nv.numberAt("y", 0.0);
      n.activations = u64At(nv, "activations");
      n.framesHeard = u64At(nv, "frames_heard");
      n.selfSeconds = nv.numberAt("self_seconds", 0.0);
      s.topNodes.push_back(n);
    }
  }
  if (const util::JsonValue* fv = hv.find("fanout");
      fv != nullptr && fv->isObject()) {
    s.fanout.transmissions = u64At(*fv, "transmissions");
    s.fanout.radiosExamined = u64At(*fv, "radios_examined");
    s.fanout.radiosInRange = u64At(*fv, "radios_in_range");
    s.fanout.maxInRange = u64At(*fv, "max_in_range");
    s.fanout.p50 = fv->numberAt("p50", 0.0);
    s.fanout.p90 = fv->numberAt("p90", 0.0);
    s.fanout.p99 = fv->numberAt("p99", 0.0);
    s.fanout.buckets = parseBuckets(*fv, "buckets");
  }
  if (const util::JsonValue* qv = hv.find("queue");
      qv != nullptr && qv->isObject()) {
    s.queue.scheduled = u64At(*qv, "scheduled");
    s.queue.zeroHorizon = u64At(*qv, "zero_horizon");
    s.queue.maxHorizonNs = u64At(*qv, "max_horizon_ns");
    s.queue.horizonP50Ns = qv->numberAt("horizon_p50_ns", 0.0);
    s.queue.horizonP90Ns = qv->numberAt("horizon_p90_ns", 0.0);
    s.queue.horizonP99Ns = qv->numberAt("horizon_p99_ns", 0.0);
    s.queue.horizonBuckets = parseBuckets(*qv, "horizon_buckets");
    s.queue.depthPeak = u64At(*qv, "depth_peak");
    s.queue.depthMean = qv->numberAt("depth_mean", 0.0);
    if (const util::JsonValue* dv = qv->find("depth_samples");
        dv != nullptr && dv->isArray()) {
      for (const util::JsonValue& row : dv->asArray()) {
        if (!row.isArray() || row.asArray().size() != 2) continue;
        const auto& v = row.asArray();
        s.queue.depthSamples.push_back(QueueSample{
            static_cast<std::int64_t>(v[0].asNumber()),
            static_cast<std::uint64_t>(v[1].asNumber())});
      }
    }
  }
  if (const util::JsonValue* av = hv.find("alloc");
      av != nullptr && av->isObject()) {
    for (std::size_t a = 0; a < kNumAllocSites; ++a) {
      const util::JsonValue* sv =
          av->find(toString(static_cast<AllocSite>(a)));
      if (sv == nullptr || !sv->isObject()) continue;
      s.alloc[a].count = u64At(*sv, "count");
      s.alloc[a].bytes = u64At(*sv, "bytes");
      s.alloc[a].live = u64At(*sv, "live");
      s.alloc[a].highWater = u64At(*sv, "high_water");
    }
  }
}

}  // namespace

const BenchScenario* BenchReport::find(const std::string& name) const {
  for (const BenchScenario& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string toJson(const BenchReport& r) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(r.schemaVersion);
  out += ",\"label\":";
  appendEscaped(out, r.label);
  out += ",\"scenarios\":[";
  for (std::size_t i = 0; i < r.scenarios.size(); ++i) {
    const BenchScenario& s = r.scenarios[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    appendEscaped(out, s.name);
    kvU64(out, "repetitions", static_cast<std::uint64_t>(s.repetitions));
    kvU64(out, "events", s.events);
    kvNum(out, "wall_seconds_median", s.wallSecondsMedian);
    kvNum(out, "events_per_sec_median", s.eventsPerSecMedian);
    out += ",\"wall_seconds_all\":[";
    for (std::size_t j = 0; j < s.wallSecondsAll.size(); ++j) {
      if (j > 0) out += ',';
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.9g", s.wallSecondsAll[j]);
      out += buf;
    }
    out += ']';
    kvU64(out, "peak_rss_bytes", s.peakRssBytes);
    kvU64(out, "sched_queue_peak", s.schedQueuePeak);
    out += ",\"category_self_seconds\":{";
    for (std::size_t j = 0; j < s.categorySelfSeconds.size(); ++j) {
      if (j > 0) out += ',';
      appendEscaped(out, s.categorySelfSeconds[j].first);
      char buf[48];
      std::snprintf(buf, sizeof(buf), ":%.9g",
                    s.categorySelfSeconds[j].second);
      out += buf;
    }
    out += '}';
    if (s.hasHotspot) appendHotspot(out, s);
    out += '}';
  }
  out += "]}";
  return out;
}

std::optional<BenchReport> parseBenchReport(std::string_view text,
                                            std::string* err) {
  const std::optional<util::JsonValue> doc = util::parseJson(text, err);
  if (!doc) return std::nullopt;
  if (!doc->isObject()) {
    if (err != nullptr) *err = "BENCH document is not a JSON object";
    return std::nullopt;
  }
  BenchReport r;
  r.schemaVersion = static_cast<int>(doc->numberAt("schema_version", 0.0));
  if (r.schemaVersion < kBenchMinSchemaVersion ||
      r.schemaVersion > kBenchSchemaVersion) {
    if (err != nullptr) {
      *err = "unsupported BENCH schema_version " +
             std::to_string(r.schemaVersion) + " (supported: " +
             std::to_string(kBenchMinSchemaVersion) + ".." +
             std::to_string(kBenchSchemaVersion) + ")";
    }
    return std::nullopt;
  }
  r.label = doc->stringAt("label");
  const util::JsonValue* scenarios = doc->find("scenarios");
  if (scenarios != nullptr && scenarios->isArray()) {
    for (const util::JsonValue& sv : scenarios->asArray()) {
      if (!sv.isObject()) continue;
      BenchScenario s;
      s.name = sv.stringAt("name");
      s.repetitions = static_cast<int>(sv.numberAt("repetitions", 0.0));
      s.events = u64At(sv, "events");
      s.wallSecondsMedian = sv.numberAt("wall_seconds_median", 0.0);
      s.eventsPerSecMedian = sv.numberAt("events_per_sec_median", 0.0);
      if (const util::JsonValue* all = sv.find("wall_seconds_all");
          all != nullptr && all->isArray()) {
        for (const util::JsonValue& w : all->asArray()) {
          s.wallSecondsAll.push_back(w.asNumber());
        }
      }
      s.peakRssBytes = u64At(sv, "peak_rss_bytes");
      s.schedQueuePeak = u64At(sv, "sched_queue_peak");
      if (const util::JsonValue* cats = sv.find("category_self_seconds");
          cats != nullptr && cats->isObject()) {
        for (const auto& [name, secs] : cats->asObject()) {
          s.categorySelfSeconds.emplace_back(name, secs.asNumber());
        }
      }
      if (const util::JsonValue* hv = sv.find("hotspot");
          hv != nullptr && hv->isObject()) {
        parseHotspot(*hv, s);
      }
      r.scenarios.push_back(std::move(s));
    }
  }
  return r;
}

BenchComparison compareBenchReports(const BenchReport& baseline,
                                    const BenchReport& candidate,
                                    double threshold) {
  BenchComparison c;
  c.threshold = threshold;
  for (const BenchScenario& base : baseline.scenarios) {
    const BenchScenario* cand = candidate.find(base.name);
    if (cand == nullptr) {
      c.onlyInBaseline.push_back(base.name);
      continue;
    }
    BenchComparisonRow row;
    row.name = base.name;
    row.baselineWallSec = base.wallSecondsMedian;
    row.candidateWallSec = cand->wallSecondsMedian;
    row.baselineEventsPerSec = base.eventsPerSecMedian;
    row.candidateEventsPerSec = cand->eventsPerSecMedian;
    row.wallRatio = base.wallSecondsMedian > 0.0
                        ? cand->wallSecondsMedian / base.wallSecondsMedian
                        : 0.0;
    row.regressed = base.wallSecondsMedian > 0.0 &&
                    cand->wallSecondsMedian >
                        base.wallSecondsMedian * (1.0 + threshold);
    // Name the category whose self time grew the most, so a tripped
    // threshold reports *what* regressed, not just that something did.
    double worstDelta = 0.0;
    for (const auto& [catName, candSec] : cand->categorySelfSeconds) {
      double baseSec = 0.0;
      for (const auto& [bn, bs] : base.categorySelfSeconds) {
        if (bn == catName) {
          baseSec = bs;
          break;
        }
      }
      const double delta = candSec - baseSec;
      if (row.worstCategory.empty() || delta > worstDelta) {
        worstDelta = delta;
        row.worstCategory = catName;
        row.worstCategoryBaseSec = baseSec;
        row.worstCategoryCandSec = candSec;
      }
    }
    if (row.regressed) c.regressed = true;
    c.rows.push_back(std::move(row));
  }
  for (const BenchScenario& cand : candidate.scenarios) {
    if (baseline.find(cand.name) == nullptr) {
      c.onlyInCandidate.push_back(cand.name);
    }
  }
  return c;
}

std::string formatComparison(const BenchComparison& c) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-24s %12s %12s %8s  %s\n", "scenario",
                "base wall s", "cand wall s", "ratio", "verdict");
  out += buf;
  for (const BenchComparisonRow& row : c.rows) {
    std::snprintf(buf, sizeof(buf), "%-24s %12.3f %12.3f %8.3f  %s\n",
                  row.name.c_str(), row.baselineWallSec, row.candidateWallSec,
                  row.wallRatio,
                  row.regressed ? "REGRESSED" : "ok");
    out += buf;
  }
  for (const BenchComparisonRow& row : c.rows) {
    if (!row.regressed) continue;
    std::snprintf(
        buf, sizeof(buf),
        "REGRESSED: %s wall time %.6fs -> %.6fs (%+.1f%%, threshold "
        "+%.0f%%)\n",
        row.name.c_str(), row.baselineWallSec, row.candidateWallSec,
        (row.wallRatio - 1.0) * 100.0, c.threshold * 100.0);
    out += buf;
    if (!row.worstCategory.empty()) {
      std::snprintf(buf, sizeof(buf),
                    "  worst category: %s self time %.6fs -> %.6fs\n",
                    row.worstCategory.c_str(), row.worstCategoryBaseSec,
                    row.worstCategoryCandSec);
      out += buf;
    }
  }
  for (const std::string& name : c.onlyInBaseline) {
    std::snprintf(buf, sizeof(buf), "%-24s missing from candidate\n",
                  name.c_str());
    out += buf;
  }
  for (const std::string& name : c.onlyInCandidate) {
    std::snprintf(buf, sizeof(buf), "%-24s missing from baseline\n",
                  name.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "threshold: +%.0f%% wall time; overall: %s\n",
                c.threshold * 100.0,
                c.regressed ? "REGRESSION DETECTED" : "within threshold");
  out += buf;
  return out;
}

namespace {

void diffU64(std::vector<std::string>& out, const std::string& scen,
             const char* field, std::uint64_t a, std::uint64_t b) {
  if (a == b) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %s %" PRIu64 " != %" PRIu64,
                scen.c_str(), field, a, b);
  out.emplace_back(buf);
}

void diffNum(std::vector<std::string>& out, const std::string& scen,
             const char* field, double a, double b) {
  if (a == b) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%s: %s %.9g != %.9g", scen.c_str(), field,
                a, b);
  out.emplace_back(buf);
}

void diffBuckets(std::vector<std::string>& out, const std::string& scen,
                 const char* field, const std::vector<HistBucket>& a,
                 const std::vector<HistBucket>& b) {
  char buf[192];
  if (a.size() != b.size()) {
    std::snprintf(buf, sizeof(buf), "%s: %s bucket count %zu != %zu",
                  scen.c_str(), field, a.size(), b.size());
    out.emplace_back(buf);
    return;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].low == b[i].low && a[i].high == b[i].high &&
        a[i].count == b[i].count) {
      continue;
    }
    std::snprintf(buf, sizeof(buf),
                  "%s: %s bucket [%" PRIu64 ",%" PRIu64 ") count %" PRIu64
                  " != [%" PRIu64 ",%" PRIu64 ") count %" PRIu64,
                  scen.c_str(), field, a[i].low, a[i].high, a[i].count,
                  b[i].low, b[i].high, b[i].count);
    out.emplace_back(buf);
  }
}

}  // namespace

std::vector<std::string> diffBenchReports(const BenchReport& a,
                                          const BenchReport& b) {
  std::vector<std::string> out;
  for (const BenchScenario& s : a.scenarios) {
    if (b.find(s.name) == nullptr) {
      out.push_back(s.name + ": only in first report");
    }
  }
  for (const BenchScenario& s : b.scenarios) {
    if (a.find(s.name) == nullptr) {
      out.push_back(s.name + ": only in second report");
    }
  }
  for (const BenchScenario& sa : a.scenarios) {
    const BenchScenario* sbp = b.find(sa.name);
    if (sbp == nullptr) continue;
    const BenchScenario& sb = *sbp;
    const std::string& n = sa.name;
    diffU64(out, n, "events", sa.events, sb.events);
    diffU64(out, n, "sched_queue_peak", sa.schedQueuePeak, sb.schedQueuePeak);
    if (sa.hasHotspot != sb.hasHotspot) {
      out.push_back(n + ": hotspot section present in only one report");
      continue;
    }
    if (!sa.hasHotspot) continue;
    if (sa.topNodes.size() != sb.topNodes.size()) {
      diffU64(out, n, "top_nodes size", sa.topNodes.size(),
              sb.topNodes.size());
    } else {
      for (std::size_t i = 0; i < sa.topNodes.size(); ++i) {
        const BenchTopNode& ta = sa.topNodes[i];
        const BenchTopNode& tb = sb.topNodes[i];
        char field[64];
        std::snprintf(field, sizeof(field), "top_nodes[%zu].node", i);
        diffU64(out, n, field, ta.node, tb.node);
        std::snprintf(field, sizeof(field), "top_nodes[%zu].activations", i);
        diffU64(out, n, field, ta.activations, tb.activations);
        std::snprintf(field, sizeof(field), "top_nodes[%zu].frames_heard", i);
        diffU64(out, n, field, ta.framesHeard, tb.framesHeard);
        std::snprintf(field, sizeof(field), "top_nodes[%zu].x", i);
        diffNum(out, n, field, ta.x, tb.x);
        std::snprintf(field, sizeof(field), "top_nodes[%zu].y", i);
        diffNum(out, n, field, ta.y, tb.y);
        // selfSeconds is wall time: informational only, never diffed.
      }
    }
    diffU64(out, n, "fanout.transmissions", sa.fanout.transmissions,
            sb.fanout.transmissions);
    diffU64(out, n, "fanout.radios_examined", sa.fanout.radiosExamined,
            sb.fanout.radiosExamined);
    diffU64(out, n, "fanout.radios_in_range", sa.fanout.radiosInRange,
            sb.fanout.radiosInRange);
    diffU64(out, n, "fanout.max_in_range", sa.fanout.maxInRange,
            sb.fanout.maxInRange);
    diffNum(out, n, "fanout.p50", sa.fanout.p50, sb.fanout.p50);
    diffNum(out, n, "fanout.p90", sa.fanout.p90, sb.fanout.p90);
    diffNum(out, n, "fanout.p99", sa.fanout.p99, sb.fanout.p99);
    diffBuckets(out, n, "fanout", sa.fanout.buckets, sb.fanout.buckets);
    diffU64(out, n, "queue.scheduled", sa.queue.scheduled,
            sb.queue.scheduled);
    diffU64(out, n, "queue.zero_horizon", sa.queue.zeroHorizon,
            sb.queue.zeroHorizon);
    diffU64(out, n, "queue.max_horizon_ns", sa.queue.maxHorizonNs,
            sb.queue.maxHorizonNs);
    diffNum(out, n, "queue.horizon_p50_ns", sa.queue.horizonP50Ns,
            sb.queue.horizonP50Ns);
    diffNum(out, n, "queue.horizon_p90_ns", sa.queue.horizonP90Ns,
            sb.queue.horizonP90Ns);
    diffNum(out, n, "queue.horizon_p99_ns", sa.queue.horizonP99Ns,
            sb.queue.horizonP99Ns);
    diffBuckets(out, n, "horizon", sa.queue.horizonBuckets,
                sb.queue.horizonBuckets);
    diffU64(out, n, "queue.depth_peak", sa.queue.depthPeak,
            sb.queue.depthPeak);
    diffNum(out, n, "queue.depth_mean", sa.queue.depthMean,
            sb.queue.depthMean);
    if (sa.queue.depthSamples.size() != sb.queue.depthSamples.size()) {
      diffU64(out, n, "queue.depth_samples size", sa.queue.depthSamples.size(),
              sb.queue.depthSamples.size());
    } else {
      for (std::size_t i = 0; i < sa.queue.depthSamples.size(); ++i) {
        if (sa.queue.depthSamples[i].simNs == sb.queue.depthSamples[i].simNs &&
            sa.queue.depthSamples[i].depth ==
                sb.queue.depthSamples[i].depth) {
          continue;
        }
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "%s: queue.depth_samples[%zu] (%" PRId64 ",%" PRIu64
                      ") != (%" PRId64 ",%" PRIu64 ")",
                      n.c_str(), i, sa.queue.depthSamples[i].simNs,
                      sa.queue.depthSamples[i].depth,
                      sb.queue.depthSamples[i].simNs,
                      sb.queue.depthSamples[i].depth);
        out.emplace_back(buf);
      }
    }
    for (std::size_t site = 0; site < kNumAllocSites; ++site) {
      char field[64];
      const char* siteName = toString(static_cast<AllocSite>(site));
      std::snprintf(field, sizeof(field), "alloc.%s.count", siteName);
      diffU64(out, n, field, sa.alloc[site].count, sb.alloc[site].count);
      std::snprintf(field, sizeof(field), "alloc.%s.bytes", siteName);
      diffU64(out, n, field, sa.alloc[site].bytes, sb.alloc[site].bytes);
      std::snprintf(field, sizeof(field), "alloc.%s.live", siteName);
      diffU64(out, n, field, sa.alloc[site].live, sb.alloc[site].live);
      std::snprintf(field, sizeof(field), "alloc.%s.high_water", siteName);
      diffU64(out, n, field, sa.alloc[site].highWater,
              sb.alloc[site].highWater);
    }
  }
  return out;
}

}  // namespace manet::prof
