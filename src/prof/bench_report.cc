#include "src/prof/bench_report.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/json.h"

namespace manet::prof {

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

void kvNum(std::string& out, const char* key, double v, bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%.9g", first ? "" : ",", key, v);
  out += buf;
}

void kvU64(std::string& out, const char* key, std::uint64_t v,
           bool first = false) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",", key,
                v);
  out += buf;
}

std::uint64_t u64At(const util::JsonValue& obj, std::string_view key) {
  const double d = obj.numberAt(key, 0.0);
  return d <= 0.0 ? 0 : static_cast<std::uint64_t>(d);
}

}  // namespace

const BenchScenario* BenchReport::find(const std::string& name) const {
  for (const BenchScenario& s : scenarios) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::string toJson(const BenchReport& r) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(r.schemaVersion);
  out += ",\"label\":";
  appendEscaped(out, r.label);
  out += ",\"scenarios\":[";
  for (std::size_t i = 0; i < r.scenarios.size(); ++i) {
    const BenchScenario& s = r.scenarios[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    appendEscaped(out, s.name);
    kvU64(out, "repetitions", static_cast<std::uint64_t>(s.repetitions));
    kvU64(out, "events", s.events);
    kvNum(out, "wall_seconds_median", s.wallSecondsMedian);
    kvNum(out, "events_per_sec_median", s.eventsPerSecMedian);
    out += ",\"wall_seconds_all\":[";
    for (std::size_t j = 0; j < s.wallSecondsAll.size(); ++j) {
      if (j > 0) out += ',';
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.9g", s.wallSecondsAll[j]);
      out += buf;
    }
    out += ']';
    kvU64(out, "peak_rss_bytes", s.peakRssBytes);
    kvU64(out, "sched_queue_peak", s.schedQueuePeak);
    out += ",\"category_self_seconds\":{";
    for (std::size_t j = 0; j < s.categorySelfSeconds.size(); ++j) {
      if (j > 0) out += ',';
      appendEscaped(out, s.categorySelfSeconds[j].first);
      char buf[48];
      std::snprintf(buf, sizeof(buf), ":%.9g",
                    s.categorySelfSeconds[j].second);
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::optional<BenchReport> parseBenchReport(std::string_view text,
                                            std::string* err) {
  const std::optional<util::JsonValue> doc = util::parseJson(text, err);
  if (!doc) return std::nullopt;
  if (!doc->isObject()) {
    if (err != nullptr) *err = "BENCH document is not a JSON object";
    return std::nullopt;
  }
  BenchReport r;
  r.schemaVersion = static_cast<int>(doc->numberAt("schema_version", 0.0));
  if (r.schemaVersion != kBenchSchemaVersion) {
    if (err != nullptr) {
      *err = "unsupported BENCH schema_version " +
             std::to_string(r.schemaVersion) + " (expected " +
             std::to_string(kBenchSchemaVersion) + ")";
    }
    return std::nullopt;
  }
  r.label = doc->stringAt("label");
  const util::JsonValue* scenarios = doc->find("scenarios");
  if (scenarios != nullptr && scenarios->isArray()) {
    for (const util::JsonValue& sv : scenarios->asArray()) {
      if (!sv.isObject()) continue;
      BenchScenario s;
      s.name = sv.stringAt("name");
      s.repetitions = static_cast<int>(sv.numberAt("repetitions", 0.0));
      s.events = u64At(sv, "events");
      s.wallSecondsMedian = sv.numberAt("wall_seconds_median", 0.0);
      s.eventsPerSecMedian = sv.numberAt("events_per_sec_median", 0.0);
      if (const util::JsonValue* all = sv.find("wall_seconds_all");
          all != nullptr && all->isArray()) {
        for (const util::JsonValue& w : all->asArray()) {
          s.wallSecondsAll.push_back(w.asNumber());
        }
      }
      s.peakRssBytes = u64At(sv, "peak_rss_bytes");
      s.schedQueuePeak = u64At(sv, "sched_queue_peak");
      if (const util::JsonValue* cats = sv.find("category_self_seconds");
          cats != nullptr && cats->isObject()) {
        for (const auto& [name, secs] : cats->asObject()) {
          s.categorySelfSeconds.emplace_back(name, secs.asNumber());
        }
      }
      r.scenarios.push_back(std::move(s));
    }
  }
  return r;
}

BenchComparison compareBenchReports(const BenchReport& baseline,
                                    const BenchReport& candidate,
                                    double threshold) {
  BenchComparison c;
  c.threshold = threshold;
  for (const BenchScenario& base : baseline.scenarios) {
    const BenchScenario* cand = candidate.find(base.name);
    if (cand == nullptr) {
      c.onlyInBaseline.push_back(base.name);
      continue;
    }
    BenchComparisonRow row;
    row.name = base.name;
    row.baselineWallSec = base.wallSecondsMedian;
    row.candidateWallSec = cand->wallSecondsMedian;
    row.baselineEventsPerSec = base.eventsPerSecMedian;
    row.candidateEventsPerSec = cand->eventsPerSecMedian;
    row.wallRatio = base.wallSecondsMedian > 0.0
                        ? cand->wallSecondsMedian / base.wallSecondsMedian
                        : 0.0;
    row.regressed = base.wallSecondsMedian > 0.0 &&
                    cand->wallSecondsMedian >
                        base.wallSecondsMedian * (1.0 + threshold);
    if (row.regressed) c.regressed = true;
    c.rows.push_back(std::move(row));
  }
  for (const BenchScenario& cand : candidate.scenarios) {
    if (baseline.find(cand.name) == nullptr) {
      c.onlyInCandidate.push_back(cand.name);
    }
  }
  return c;
}

std::string formatComparison(const BenchComparison& c) {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-24s %12s %12s %8s  %s\n", "scenario",
                "base wall s", "cand wall s", "ratio", "verdict");
  out += buf;
  for (const BenchComparisonRow& row : c.rows) {
    std::snprintf(buf, sizeof(buf), "%-24s %12.3f %12.3f %8.3f  %s\n",
                  row.name.c_str(), row.baselineWallSec, row.candidateWallSec,
                  row.wallRatio,
                  row.regressed ? "REGRESSED" : "ok");
    out += buf;
  }
  for (const std::string& name : c.onlyInBaseline) {
    std::snprintf(buf, sizeof(buf), "%-24s missing from candidate\n",
                  name.c_str());
    out += buf;
  }
  for (const std::string& name : c.onlyInCandidate) {
    std::snprintf(buf, sizeof(buf), "%-24s missing from baseline\n",
                  name.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "threshold: +%.0f%% wall time; overall: %s\n",
                c.threshold * 100.0,
                c.regressed ? "REGRESSION DETECTED" : "within threshold");
  out += buf;
  return out;
}

}  // namespace manet::prof
