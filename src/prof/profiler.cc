#include "src/prof/profiler.h"

#include <sys/resource.h>

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/util/logging.h"
#include "src/util/mutex.h"
#include "src/util/thread_annotations.h"

namespace manet::prof {

const char* toString(Category c) {
  switch (c) {
    case Category::kPhy: return "phy";
    case Category::kMac: return "mac";
    case Category::kRouting: return "routing";
    case Category::kMobility: return "mobility";
    case Category::kTraffic: return "traffic";
    case Category::kTransport: return "transport";
    case Category::kFault: return "fault";
    case Category::kTelemetry: return "telemetry";
    case Category::kOther: return "other";
  }
  return "?";
}

const char* toString(Gauge g) {
  switch (g) {
    case Gauge::kRouteCacheEntries: return "route_cache_entries_peak";
    case Gauge::kNegCacheEntries: return "neg_cache_entries_peak";
    case Gauge::kSendBufOccupancy: return "send_buf_occupancy_peak";
  }
  return "?";
}

ProfConfig ProfConfig::fromEnv(ProfConfig base) {
  if (const char* v = std::getenv("MANET_PROF"); v != nullptr) {  // NOLINT(concurrency-mt-unsafe)
    base.enabled = v[0] == '1';
  }
  if (const char* v = std::getenv("MANET_PROF_HIST"); v != nullptr) {  // NOLINT(concurrency-mt-unsafe)
    base.histograms = v[0] != '0';
  }
  if (const char* v = std::getenv("MANET_PROF_HEARTBEAT");  // NOLINT(concurrency-mt-unsafe)
      v != nullptr && v[0] != '\0') {
    char* end = nullptr;
    const double secs = std::strtod(v, &end);
    if (end != v && secs >= 0.0) base.heartbeatSec = secs;
  }
  return base;
}

// ---------------------------------------------------------------- histogram

int LatencyHistogram::bucketIndex(std::uint64_t ns) {
  if (ns < kSub) return static_cast<int>(ns);
  const int msb = 63 - std::countl_zero(ns);
  // Keep the top kSubBits+1 bits: (ns >> (msb-kSubBits)) is in [kSub, 2*kSub).
  const int idx = static_cast<int>(
      static_cast<std::uint64_t>((msb - kSubBits + 1)) * kSub +
      ((ns >> (msb - kSubBits)) - kSub));
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t LatencyHistogram::bucketLowNs(int bucket) {
  if (bucket < kSub) return static_cast<std::uint64_t>(bucket);
  const int octave = bucket / kSub;       // >= 1
  const int rem = bucket % kSub;
  return static_cast<std::uint64_t>(kSub + rem) << (octave - 1);
}

std::uint64_t LatencyHistogram::bucketHighNs(int bucket) {
  if (bucket < kSub) return static_cast<std::uint64_t>(bucket) + 1;
  const int octave = bucket / kSub;
  const int rem = bucket % kSub;
  const std::uint64_t base = static_cast<std::uint64_t>(kSub + rem + 1);
  const int shift = octave - 1;
  // The top buckets' exclusive bound exceeds uint64: saturate.
  if (shift >= 64 ||
      base > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return base << shift;
}

void LatencyHistogram::record(std::uint64_t ns) {
  ++counts_[static_cast<std::size_t>(bucketIndex(ns))];
  ++count_;
  totalNs_ += ns;
  if (ns > maxNs_) maxNs_ = ns;
}

double LatencyHistogram::percentileNs(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample, 1-based; at least 1.
  const double exact = p / 100.0 * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact || rank == 0) ++rank;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    if (cum + counts_[b] >= rank) {
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(counts_[b]);
      const double low = static_cast<double>(bucketLowNs(b));
      // Interpolate up to the bucket's largest *member* (high is an
      // exclusive bound), which makes width-1 buckets (< kSub ns) exact.
      const double top = static_cast<double>(bucketHighNs(b) - 1);
      return low + (top - low) * frac;
    }
    cum += counts_[b];
  }
  return static_cast<double>(maxNs_);
}

// ----------------------------------------------------------------- profiler

namespace detail {

// Audited: src/prof/ is exempt from the manet_lint wall-clock rule by
// design — this is the single funnel for host-time reads, and the values
// only ever flow into reports (self-time, heartbeat ETA), never back into
// scheduling, RNG draws, or any simulation decision.
std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Calibrate the TSC rate against steady_clock over a ~2 ms spin (runs once
// per process, lazily on the first profiled clock read). Returns 0 when the
// counter is unusable (c1 <= c0, i.e. non-invariant or emulated TSC), which
// makes fastClockNs fall back to the vdso read.
double tscNsPerTick() {
#if defined(__x86_64__)
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = __builtin_ia32_rdtsc();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(2)) {
  }
  const std::uint64_t c1 = __builtin_ia32_rdtsc();
  const auto t1 = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
  return c1 > c0 ? static_cast<double>(ns) / static_cast<double>(c1 - c0)
                 : 0.0;
#else
  return 0.0;
#endif
}

}  // namespace detail

Profiler::Profiler(ProfConfig cfg, ClockFn clock) : cfg_(cfg), clock_(clock) {
  if (cfg_.heartbeatSec > 0.0) {
    heartbeatPeriodNs_ = static_cast<std::uint64_t>(cfg_.heartbeatSec * 1e9);
    startWallNs_ = clockNs();
    lastBeatWallNs_ = startWallNs_;
  }
  if (cfg_.enabled) {
    // Setup-time allocations only: the record paths never grow anything.
    depthSamples_.reserve(kMaxDepthSamples);
    AllocTracker::install(&tracker_);
  }
}

Profiler::~Profiler() { AllocTracker::uninstallIf(&tracker_); }

void Profiler::pushDepthSample(std::int64_t simNs, std::uint64_t depth) {
  if (depthSamples_.size() == kMaxDepthSamples) {
    // Decimate in place: keep samples at even multiples of the old stride
    // (odd indices), then double the stride. Purely count-driven, so the
    // surviving series is identical across same-seed runs.
    std::size_t w = 0;
    for (std::size_t r = 1; r < depthSamples_.size(); r += 2) {
      depthSamples_[w++] = depthSamples_[r];
    }
    depthSamples_.resize(w);
    depthStride_ *= 2;
    if ((depthTicks_ & (depthStride_ - 1)) != 0) return;
  }
  depthSamples_.push_back(QueueSample{simNs, depth});
}

void Profiler::heartbeatSlow(std::int64_t simNowNs, std::int64_t simUntilNs,
                             std::uint64_t executed) {
  const std::uint64_t wall = clockNs();
  if (wall - lastBeatWallNs_ < heartbeatPeriodNs_) return;
  const double wallDelta = static_cast<double>(wall - lastBeatWallNs_) / 1e9;
  const double simDelta =
      static_cast<double>(simNowNs - lastBeatSimNs_) / 1e9;
  const double evRate =
      static_cast<double>(executed - lastBeatEvents_) / wallDelta;
  const double simRate = simDelta / wallDelta;  // sim seconds per wall second
  char eta[48];
  // Time::max() marks an unbounded run; no ETA then.
  if (simUntilNs > simNowNs && simRate > 0.0 &&
      simUntilNs != std::numeric_limits<std::int64_t>::max()) {
    std::snprintf(eta, sizeof(eta), " | eta %.1fs",
                  static_cast<double>(simUntilNs - simNowNs) / 1e9 / simRate);
  } else {
    eta[0] = '\0';
  }
  {
    // Parallel sweep runs heartbeat concurrently; never interleave lines.
    const util::MutexLock lock(util::stderrMutex());
    std::fprintf(stderr,
                 "[prof] sim t=%.1fs | %.2fM ev/s | sim rate %.2fx | "
                 "%" PRIu64 " events | wall %.1fs%s\n",
                 static_cast<double>(simNowNs) / 1e9, evRate / 1e6, simRate,
                 executed,
                 static_cast<double>(wall - startWallNs_) / 1e9, eta);
  }
  lastBeatWallNs_ = wall;
  lastBeatSimNs_ = simNowNs;
  lastBeatEvents_ = executed;
}

namespace {

// Non-empty buckets of a histogram as (low, high, count) rows.
std::vector<HistBucket> nonzeroBuckets(const LatencyHistogram& h) {
  std::vector<HistBucket> out;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const std::uint64_t n = h.bucketCount(b);
    if (n == 0) continue;
    out.push_back(HistBucket{LatencyHistogram::bucketLowNs(b),
                             LatencyHistogram::bucketHighNs(b), n});
  }
  return out;
}

}  // namespace

Report Profiler::report() const {
  Report r;
  r.enabled = cfg_.enabled;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const CategoryStats& s = stats_[i];
    CategoryReport& c = r.categories[i];
    c.category = static_cast<Category>(i);
    c.dispatches = s.dispatches;
    c.scopes = s.scopes;
    c.selfNs = s.selfNs;
    c.maxNs = s.latency.maxNs();
    if (cfg_.histograms && s.latency.count() > 0) {
      c.p50Ns = s.latency.percentileNs(50.0);
      c.p90Ns = s.latency.percentileNs(90.0);
      c.p99Ns = s.latency.percentileNs(99.0);
    }
    r.totalSelfNs += s.selfNs;
    r.totalDispatches += s.dispatches;
  }
  r.gaugePeaks = gaugePeaks_;
  r.peakRssBytes = readPeakRssBytes();

  HotspotReport& h = r.hotspot;
  for (std::size_t n = 0; n < entities_.size(); ++n) {
    const EntityStats& e = entities_[n];
    EntityReport er;
    er.node = static_cast<std::uint32_t>(n);
    er.framesHeard = e.framesHeard;
    for (std::size_t c = 0; c < kNumCategories; ++c) {
      er.activations += e.scopes[c];
      er.selfNs += e.selfNs[c];
      er.categorySelfNs[c] = e.selfNs[c];
      er.categoryScopes[c] = e.scopes[c];
    }
    if (er.activations > 0 || er.framesHeard > 0) h.entities.push_back(er);
  }

  h.fanout.transmissions = fanoutTransmissions_;
  h.fanout.radiosExamined = fanoutExamined_;
  h.fanout.radiosInRange = fanoutInRange_;
  h.fanout.maxInRange = fanoutHist_.maxNs();
  if (fanoutHist_.count() > 0) {
    h.fanout.p50 = fanoutHist_.percentileNs(50.0);
    h.fanout.p90 = fanoutHist_.percentileNs(90.0);
    h.fanout.p99 = fanoutHist_.percentileNs(99.0);
  }
  h.fanout.buckets = nonzeroBuckets(fanoutHist_);

  h.queue.scheduled = horizonHist_.count();
  h.queue.zeroHorizon = zeroHorizon_;
  h.queue.maxHorizonNs = horizonHist_.maxNs();
  if (horizonHist_.count() > 0) {
    h.queue.horizonP50Ns = horizonHist_.percentileNs(50.0);
    h.queue.horizonP90Ns = horizonHist_.percentileNs(90.0);
    h.queue.horizonP99Ns = horizonHist_.percentileNs(99.0);
  }
  h.queue.horizonBuckets = nonzeroBuckets(horizonHist_);
  h.queue.depthPeak = depthPeak_;
  h.queue.depthMean = depthTicks_ > 0 ? static_cast<double>(depthSum_) /
                                            static_cast<double>(depthTicks_)
                                      : 0.0;
  h.queue.depthSamples = depthSamples_;
  h.alloc = tracker_.sites();
  return r;
}

std::uint64_t readPeakRssBytes() {
  // VmHWM from /proc/self/status is the peak resident set in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %" SCNu64 " kB", &kb) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    if (found) return kb * 1024;
  }
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB on Linux
  }
  return 0;
}

std::string toJson(const Report& r) {
  char buf[256];
  std::string out = "{\"enabled\":";
  out += r.enabled ? "true" : "false";
  std::snprintf(buf, sizeof(buf),
                ",\"peak_rss_bytes\":%" PRIu64 ",\"total_self_ns\":%" PRIu64
                ",\"total_dispatches\":%" PRIu64,
                r.peakRssBytes, r.totalSelfNs, r.totalDispatches);
  out += buf;
  for (std::size_t g = 0; g < kNumGauges; ++g) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64,
                  toString(static_cast<Gauge>(g)), r.gaugePeaks[g]);
    out += buf;
  }
  out += ",\"categories\":{";
  bool first = true;
  for (const CategoryReport& c : r.categories) {
    if (c.dispatches == 0 && c.scopes == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"dispatches\":%" PRIu64 ",\"scopes\":%" PRIu64
                  ",\"self_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64
                  ",\"p50_ns\":%.9g,\"p90_ns\":%.9g,\"p99_ns\":%.9g}",
                  first ? "" : ",", toString(c.category), c.dispatches,
                  c.scopes, c.selfNs, c.maxNs, c.p50Ns, c.p90Ns, c.p99Ns);
    out += buf;
    first = false;
  }
  out += "}";
  if (r.enabled) {
    out += ",\"hotspot\":";
    out += hotspotJson(r.hotspot);
  }
  out += "}";
  return out;
}

namespace {

std::string bucketsJson(const std::vector<HistBucket>& buckets) {
  char buf[128];
  std::string out = "[";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "%s[%" PRIu64 ",%" PRIu64 ",%" PRIu64 "]", i > 0 ? "," : "",
                  buckets[i].low, buckets[i].high, buckets[i].count);
    out += buf;
  }
  out += "]";
  return out;
}

std::string categoryCountsJson(
    const std::array<std::uint64_t, kNumCategories>& v) {
  char buf[64];
  std::string out = "{";
  bool first = true;
  for (std::size_t c = 0; c < kNumCategories; ++c) {
    if (v[c] == 0) continue;
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  toString(static_cast<Category>(c)), v[c]);
    out += buf;
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace

std::string hotspotJson(const HotspotReport& h) {
  char buf[512];
  std::string out = "{\"entities\":[";
  for (std::size_t i = 0; i < h.entities.size(); ++i) {
    const EntityReport& e = h.entities[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"node\":%u,\"activations\":%" PRIu64
                  ",\"self_ns\":%" PRIu64 ",\"frames_heard\":%" PRIu64
                  ",\"category_self_ns\":",
                  i > 0 ? "," : "", e.node, e.activations, e.selfNs,
                  e.framesHeard);
    out += buf;
    out += categoryCountsJson(e.categorySelfNs);
    out += ",\"category_scopes\":";
    out += categoryCountsJson(e.categoryScopes);
    out += "}";
  }
  std::snprintf(buf, sizeof(buf),
                "],\"fanout\":{\"transmissions\":%" PRIu64
                ",\"radios_examined\":%" PRIu64 ",\"radios_in_range\":%" PRIu64
                ",\"max_in_range\":%" PRIu64
                ",\"p50\":%.9g,\"p90\":%.9g,\"p99\":%.9g,\"buckets\":",
                h.fanout.transmissions, h.fanout.radiosExamined,
                h.fanout.radiosInRange, h.fanout.maxInRange, h.fanout.p50,
                h.fanout.p90, h.fanout.p99);
  out += buf;
  out += bucketsJson(h.fanout.buckets);
  std::snprintf(buf, sizeof(buf),
                "},\"queue\":{\"scheduled\":%" PRIu64
                ",\"zero_horizon\":%" PRIu64 ",\"max_horizon_ns\":%" PRIu64
                ",\"horizon_p50_ns\":%.9g,\"horizon_p90_ns\":%.9g"
                ",\"horizon_p99_ns\":%.9g,\"horizon_buckets\":",
                h.queue.scheduled, h.queue.zeroHorizon, h.queue.maxHorizonNs,
                h.queue.horizonP50Ns, h.queue.horizonP90Ns,
                h.queue.horizonP99Ns);
  out += buf;
  out += bucketsJson(h.queue.horizonBuckets);
  std::snprintf(buf, sizeof(buf),
                ",\"depth_peak\":%" PRIu64
                ",\"depth_mean\":%.9g,\"depth_samples\":[",
                h.queue.depthPeak, h.queue.depthMean);
  out += buf;
  for (std::size_t i = 0; i < h.queue.depthSamples.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s[%" PRId64 ",%" PRIu64 "]",
                  i > 0 ? "," : "", h.queue.depthSamples[i].simNs,
                  h.queue.depthSamples[i].depth);
    out += buf;
  }
  out += "]},\"alloc\":{";
  for (std::size_t s = 0; s < kNumAllocSites; ++s) {
    const AllocSiteStats& st = h.alloc[s];
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"count\":%" PRIu64 ",\"bytes\":%" PRIu64
                  ",\"live\":%" PRIu64 ",\"high_water\":%" PRIu64 "}",
                  s > 0 ? "," : "", toString(static_cast<AllocSite>(s)),
                  st.count, st.bytes, st.live, st.highWater);
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace manet::prof
