#include "src/prof/profiler.h"

#include <sys/resource.h>

#include <bit>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>

#include "src/util/logging.h"

namespace manet::prof {

const char* toString(Category c) {
  switch (c) {
    case Category::kPhy: return "phy";
    case Category::kMac: return "mac";
    case Category::kRouting: return "routing";
    case Category::kMobility: return "mobility";
    case Category::kTraffic: return "traffic";
    case Category::kTransport: return "transport";
    case Category::kFault: return "fault";
    case Category::kTelemetry: return "telemetry";
    case Category::kOther: return "other";
  }
  return "?";
}

const char* toString(Gauge g) {
  switch (g) {
    case Gauge::kRouteCacheEntries: return "route_cache_entries_peak";
    case Gauge::kNegCacheEntries: return "neg_cache_entries_peak";
    case Gauge::kSendBufOccupancy: return "send_buf_occupancy_peak";
  }
  return "?";
}

ProfConfig ProfConfig::fromEnv(ProfConfig base) {
  if (const char* v = std::getenv("MANET_PROF"); v != nullptr) {
    base.enabled = v[0] == '1';
  }
  if (const char* v = std::getenv("MANET_PROF_HIST"); v != nullptr) {
    base.histograms = v[0] != '0';
  }
  if (const char* v = std::getenv("MANET_PROF_HEARTBEAT");
      v != nullptr && v[0] != '\0') {
    char* end = nullptr;
    const double secs = std::strtod(v, &end);
    if (end != v && secs >= 0.0) base.heartbeatSec = secs;
  }
  return base;
}

// ---------------------------------------------------------------- histogram

int LatencyHistogram::bucketIndex(std::uint64_t ns) {
  if (ns < kSub) return static_cast<int>(ns);
  const int msb = 63 - std::countl_zero(ns);
  // Keep the top kSubBits+1 bits: (ns >> (msb-kSubBits)) is in [kSub, 2*kSub).
  const int idx = static_cast<int>(
      static_cast<std::uint64_t>((msb - kSubBits + 1)) * kSub +
      ((ns >> (msb - kSubBits)) - kSub));
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t LatencyHistogram::bucketLowNs(int bucket) {
  if (bucket < kSub) return static_cast<std::uint64_t>(bucket);
  const int octave = bucket / kSub;       // >= 1
  const int rem = bucket % kSub;
  return static_cast<std::uint64_t>(kSub + rem) << (octave - 1);
}

std::uint64_t LatencyHistogram::bucketHighNs(int bucket) {
  if (bucket < kSub) return static_cast<std::uint64_t>(bucket) + 1;
  const int octave = bucket / kSub;
  const int rem = bucket % kSub;
  const std::uint64_t base = static_cast<std::uint64_t>(kSub + rem + 1);
  const int shift = octave - 1;
  // The top buckets' exclusive bound exceeds uint64: saturate.
  if (shift >= 64 ||
      base > (std::numeric_limits<std::uint64_t>::max() >> shift)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return base << shift;
}

void LatencyHistogram::record(std::uint64_t ns) {
  ++counts_[static_cast<std::size_t>(bucketIndex(ns))];
  ++count_;
  totalNs_ += ns;
  if (ns > maxNs_) maxNs_ = ns;
}

double LatencyHistogram::percentileNs(double p) const {
  if (count_ == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Rank of the target sample, 1-based; at least 1.
  const double exact = p / 100.0 * static_cast<double>(count_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact || rank == 0) ++rank;
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    if (cum + counts_[b] >= rank) {
      const double frac = static_cast<double>(rank - cum) /
                          static_cast<double>(counts_[b]);
      const double low = static_cast<double>(bucketLowNs(b));
      // Interpolate up to the bucket's largest *member* (high is an
      // exclusive bound), which makes width-1 buckets (< kSub ns) exact.
      const double top = static_cast<double>(bucketHighNs(b) - 1);
      return low + (top - low) * frac;
    }
    cum += counts_[b];
  }
  return static_cast<double>(maxNs_);
}

// ----------------------------------------------------------------- profiler

namespace {

// Audited: src/prof/ is exempt from the manet_lint wall-clock rule by
// design — this is the single funnel for host-time reads, and the values
// only ever flow into reports (self-time, heartbeat ETA), never back into
// scheduling, RNG draws, or any simulation decision.
std::uint64_t steadyNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Profiler::Profiler(ProfConfig cfg, ClockFn clock)
    : cfg_(cfg), clock_(clock != nullptr ? clock : &steadyNowNs) {
  if (cfg_.heartbeatSec > 0.0) {
    heartbeatPeriodNs_ = static_cast<std::uint64_t>(cfg_.heartbeatSec * 1e9);
    startWallNs_ = clock_();
    lastBeatWallNs_ = startWallNs_;
  }
}

void Profiler::heartbeatSlow(std::int64_t simNowNs, std::int64_t simUntilNs,
                             std::uint64_t executed) {
  const std::uint64_t wall = clock_();
  if (wall - lastBeatWallNs_ < heartbeatPeriodNs_) return;
  const double wallDelta = static_cast<double>(wall - lastBeatWallNs_) / 1e9;
  const double simDelta =
      static_cast<double>(simNowNs - lastBeatSimNs_) / 1e9;
  const double evRate =
      static_cast<double>(executed - lastBeatEvents_) / wallDelta;
  const double simRate = simDelta / wallDelta;  // sim seconds per wall second
  char eta[48];
  // Time::max() marks an unbounded run; no ETA then.
  if (simUntilNs > simNowNs && simRate > 0.0 &&
      simUntilNs != std::numeric_limits<std::int64_t>::max()) {
    std::snprintf(eta, sizeof(eta), " | eta %.1fs",
                  static_cast<double>(simUntilNs - simNowNs) / 1e9 / simRate);
  } else {
    eta[0] = '\0';
  }
  {
    // Parallel sweep runs heartbeat concurrently; never interleave lines.
    const std::lock_guard<std::mutex> lock(util::stderrMutex());
    std::fprintf(stderr,
                 "[prof] sim t=%.1fs | %.2fM ev/s | sim rate %.2fx | "
                 "%" PRIu64 " events | wall %.1fs%s\n",
                 static_cast<double>(simNowNs) / 1e9, evRate / 1e6, simRate,
                 executed,
                 static_cast<double>(wall - startWallNs_) / 1e9, eta);
  }
  lastBeatWallNs_ = wall;
  lastBeatSimNs_ = simNowNs;
  lastBeatEvents_ = executed;
}

Report Profiler::report() const {
  Report r;
  r.enabled = cfg_.enabled;
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const CategoryStats& s = stats_[i];
    CategoryReport& c = r.categories[i];
    c.category = static_cast<Category>(i);
    c.dispatches = s.dispatches;
    c.scopes = s.scopes;
    c.selfNs = s.selfNs;
    c.maxNs = s.latency.maxNs();
    if (cfg_.histograms && s.latency.count() > 0) {
      c.p50Ns = s.latency.percentileNs(50.0);
      c.p90Ns = s.latency.percentileNs(90.0);
      c.p99Ns = s.latency.percentileNs(99.0);
    }
    r.totalSelfNs += s.selfNs;
    r.totalDispatches += s.dispatches;
  }
  r.gaugePeaks = gaugePeaks_;
  r.peakRssBytes = readPeakRssBytes();
  return r;
}

std::uint64_t readPeakRssBytes() {
  // VmHWM from /proc/self/status is the peak resident set in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    std::uint64_t kb = 0;
    bool found = false;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %" SCNu64 " kB", &kb) == 1) {
        found = true;
        break;
      }
    }
    std::fclose(f);
    if (found) return kb * 1024;
  }
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;  // kB on Linux
  }
  return 0;
}

std::string toJson(const Report& r) {
  char buf[256];
  std::string out = "{\"enabled\":";
  out += r.enabled ? "true" : "false";
  std::snprintf(buf, sizeof(buf),
                ",\"peak_rss_bytes\":%" PRIu64 ",\"total_self_ns\":%" PRIu64
                ",\"total_dispatches\":%" PRIu64,
                r.peakRssBytes, r.totalSelfNs, r.totalDispatches);
  out += buf;
  for (std::size_t g = 0; g < kNumGauges; ++g) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%" PRIu64,
                  toString(static_cast<Gauge>(g)), r.gaugePeaks[g]);
    out += buf;
  }
  out += ",\"categories\":{";
  bool first = true;
  for (const CategoryReport& c : r.categories) {
    if (c.dispatches == 0 && c.scopes == 0) continue;
    std::snprintf(buf, sizeof(buf),
                  "%s\"%s\":{\"dispatches\":%" PRIu64 ",\"scopes\":%" PRIu64
                  ",\"self_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64
                  ",\"p50_ns\":%.9g,\"p90_ns\":%.9g,\"p99_ns\":%.9g}",
                  first ? "" : ",", toString(c.category), c.dispatches,
                  c.scopes, c.selfNs, c.maxNs, c.p50Ns, c.p90Ns, c.p99Ns);
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

}  // namespace manet::prof
