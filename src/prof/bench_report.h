// BENCH_*.json — the repo's performance-baseline file format.
//
// bench/perf_baseline runs the canonical scenarios, takes the median wall
// time of >= 3 repetitions, and writes one schema-versioned BenchReport.
// Committed baselines (BENCH_seed.json) let later sessions and CI diff a
// fresh run against a known-good machine profile: compareBenchReports
// flags any scenario whose median wall time regressed past a configurable
// threshold. Parsing goes through util::parseJson, so a report written by
// one build is readable by every later one (unknown keys are ignored;
// schema_version gates incompatible rewrites).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace manet::prof {

inline constexpr int kBenchSchemaVersion = 1;

/// One benchmark scenario's measured profile (median across repetitions).
struct BenchScenario {
  std::string name;
  int repetitions = 0;
  std::uint64_t events = 0;          // scheduler dispatches, median rep
  double wallSecondsMedian = 0.0;
  double eventsPerSecMedian = 0.0;
  std::vector<double> wallSecondsAll;  // every repetition, run order
  std::uint64_t peakRssBytes = 0;
  std::uint64_t schedQueuePeak = 0;
  /// Per-category exclusive wall time (seconds) from the median repetition,
  /// category name -> seconds; categories with no activity are omitted.
  std::vector<std::pair<std::string, double>> categorySelfSeconds;
};

struct BenchReport {
  int schemaVersion = kBenchSchemaVersion;
  std::string label;
  std::vector<BenchScenario> scenarios;

  const BenchScenario* find(const std::string& name) const;
};

std::string toJson(const BenchReport& r);

/// Parse a BENCH_*.json document. Returns nullopt (and sets `err` if
/// non-null) on malformed JSON or an unsupported schema_version.
std::optional<BenchReport> parseBenchReport(std::string_view text,
                                            std::string* err = nullptr);

/// One scenario's baseline-vs-candidate delta.
struct BenchComparisonRow {
  std::string name;
  double baselineWallSec = 0.0;
  double candidateWallSec = 0.0;
  /// candidate / baseline; > 1 means the candidate is slower.
  double wallRatio = 0.0;
  double baselineEventsPerSec = 0.0;
  double candidateEventsPerSec = 0.0;
  bool regressed = false;
};

struct BenchComparison {
  std::vector<BenchComparisonRow> rows;
  /// Scenarios present in only one of the two reports (not an error, but
  /// reported so a silently shrunk benchmark set can't hide a regression).
  std::vector<std::string> onlyInBaseline;
  std::vector<std::string> onlyInCandidate;
  double threshold = 0.0;
  bool regressed = false;  // any row regressed
};

/// Compare two reports scenario-by-scenario. A scenario regresses when its
/// candidate median wall time exceeds baseline * (1 + threshold).
BenchComparison compareBenchReports(const BenchReport& baseline,
                                    const BenchReport& candidate,
                                    double threshold);

/// Human-readable comparison table (one line per scenario plus a verdict).
std::string formatComparison(const BenchComparison& c);

}  // namespace manet::prof
