// BENCH_*.json — the repo's performance-baseline file format.
//
// bench/perf_baseline runs the canonical scenarios, takes the median wall
// time of >= 3 repetitions, and writes one schema-versioned BenchReport.
// Committed baselines (BENCH_seed.json) let later sessions and CI diff a
// fresh run against a known-good machine profile: compareBenchReports
// flags any scenario whose median wall time regressed past a configurable
// threshold. Parsing goes through util::parseJson, so a report written by
// one build is readable by every later one (unknown keys are ignored;
// schema_version gates incompatible rewrites).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/prof/profiler.h"

namespace manet::prof {

/// Version written by this build. Schema history:
///   v1  wall medians, events, category self-seconds (BENCH_seed.json).
///   v2  adds the per-scenario "hotspot" section: top-K nodes with spatial
///       coordinates, channel fan-out, event-queue horizon/depth analytics
///       and allocation-site counters.
/// parseBenchReport accepts both; v1 reports simply carry no hotspot data
/// (hasHotspot == false), so --compare against BENCH_seed.json keeps
/// working.
inline constexpr int kBenchSchemaVersion = 2;
inline constexpr int kBenchMinSchemaVersion = 1;

/// One of the K hottest nodes of a scenario, ranked by deterministic
/// activation count (ties broken by node id) so the ranking — unlike the
/// informational selfSeconds — is identical across same-seed runs.
struct BenchTopNode {
  std::uint32_t node = 0;
  double x = 0.0;  // end-of-run position (spatial heatmap coordinates)
  double y = 0.0;
  std::uint64_t activations = 0;
  std::uint64_t framesHeard = 0;
  double selfSeconds = 0.0;  // wall time: informational, excluded from diff
};

/// One benchmark scenario's measured profile (median across repetitions).
struct BenchScenario {
  std::string name;
  int repetitions = 0;
  std::uint64_t events = 0;          // scheduler dispatches, median rep
  double wallSecondsMedian = 0.0;
  double eventsPerSecMedian = 0.0;
  std::vector<double> wallSecondsAll;  // every repetition, run order
  std::uint64_t peakRssBytes = 0;
  std::uint64_t schedQueuePeak = 0;
  /// Per-category exclusive wall time (seconds) from the median repetition,
  /// category name -> seconds; categories with no activity are omitted.
  std::vector<std::pair<std::string, double>> categorySelfSeconds;
  /// Schema v2: hotspot observability from the median repetition. False for
  /// v1 reports and for runs without profiling.
  bool hasHotspot = false;
  std::vector<BenchTopNode> topNodes;
  FanoutReport fanout;
  QueueReport queue;
  std::array<AllocSiteStats, kNumAllocSites> alloc{};
};

struct BenchReport {
  int schemaVersion = kBenchSchemaVersion;
  std::string label;
  std::vector<BenchScenario> scenarios;

  const BenchScenario* find(const std::string& name) const;
};

std::string toJson(const BenchReport& r);

/// Parse a BENCH_*.json document. Returns nullopt (and sets `err` if
/// non-null) on malformed JSON or an unsupported schema_version.
std::optional<BenchReport> parseBenchReport(std::string_view text,
                                            std::string* err = nullptr);

/// One scenario's baseline-vs-candidate delta.
struct BenchComparisonRow {
  std::string name;
  double baselineWallSec = 0.0;
  double candidateWallSec = 0.0;
  /// candidate / baseline; > 1 means the candidate is slower.
  double wallRatio = 0.0;
  double baselineEventsPerSec = 0.0;
  double candidateEventsPerSec = 0.0;
  bool regressed = false;
  /// Category with the largest self-seconds increase (empty when neither
  /// report carries category data); printed when the row regresses so the
  /// failure names the metric that moved, not just the scenario.
  std::string worstCategory;
  double worstCategoryBaseSec = 0.0;
  double worstCategoryCandSec = 0.0;
};

struct BenchComparison {
  std::vector<BenchComparisonRow> rows;
  /// Scenarios present in only one of the two reports (not an error, but
  /// reported so a silently shrunk benchmark set can't hide a regression).
  std::vector<std::string> onlyInBaseline;
  std::vector<std::string> onlyInCandidate;
  double threshold = 0.0;
  bool regressed = false;  // any row regressed
};

/// Compare two reports scenario-by-scenario. A scenario regresses when its
/// candidate median wall time exceeds baseline * (1 + threshold).
BenchComparison compareBenchReports(const BenchReport& baseline,
                                    const BenchReport& candidate,
                                    double threshold);

/// Human-readable comparison table (one line per scenario plus a verdict).
/// Regressed rows get a detail line naming the scenario, both wall times,
/// and the worst-moving category with both of its values.
std::string formatComparison(const BenchComparison& c);

/// Deterministic-field diff for `manet_prof --diff`: compares only fields
/// that are pure functions of the simulation (events, queue peaks, top-node
/// activations / frames heard / positions, fan-out and horizon counts,
/// allocation tallies) and ignores every wall-time-derived value. Two runs
/// of the same seed therefore diff to zero lines; any line signals a real
/// behavioural divergence, not timing noise.
std::vector<std::string> diffBenchReports(const BenchReport& a,
                                          const BenchReport& b);

}  // namespace manet::prof
