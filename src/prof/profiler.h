// Self-profiling subsystem: where does simulator wall time go?
//
// The scheduler attributes wall-clock time and dispatch counts to event
// categories (PHY, MAC, routing, mobility, traffic, transport, fault,
// telemetry); subsystems refine the attribution with nested prof::Scope
// guards (e.g. DSR work performed inside a MAC reception event is charged
// to routing, not MAC — scopes track *self* time, excluding children).
// Per-category latency histograms, scheduler-queue high-water marks, cache
// occupancy peaks and peak RSS round out the picture, and an optional
// wall-clock heartbeat reports progress (events/sec, sim rate, ETA) on
// stderr during long sweeps.
//
// Design constraints:
//  * Branch-cheap when off: every hook is a null-pointer / bool check; a
//    disabled profiler performs no clock reads and no allocations.
//  * Zero allocations when on: all state is fixed-size arrays, so the
//    record path never touches the heap (asserted by tests).
//  * Deterministic: the profiler only ever *reads* the wall clock; it never
//    touches simulated time or any simulation RNG stream, so a profiled run
//    is bit-identical to an unprofiled run (asserted by tests).
//  * Testable: the wall clock is injectable (a plain function pointer), so
//    attribution and percentile tests are exact, not timing-dependent.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/prof/hotspot.h"

namespace manet::prof {

/// What kind of work an event or scope performs. Scheduler events carry
/// their category from the scheduling site; scopes refine attribution
/// within a handler.
enum class Category : std::uint8_t {
  kPhy,        // channel propagation, reception start/end
  kMac,        // 802.11 DCF: backoff, timeouts, SIFS responses
  kRouting,    // DSR / AODV protocol processing
  kMobility,   // position queries (random-waypoint evaluation)
  kTraffic,    // CBR source ticks
  kTransport,  // reliable-transport timers
  kFault,      // fault-injection events
  kTelemetry,  // sampler probes, invariant sweeps
  kOther,      // uncategorised events
};
inline constexpr std::size_t kNumCategories = 9;
const char* toString(Category c);

/// Peak-tracked occupancy gauges reported by the owning subsystems.
enum class Gauge : std::uint8_t {
  kRouteCacheEntries,  // per-node route/link cache entries
  kNegCacheEntries,    // per-node negative-cache entries
  kSendBufOccupancy,   // per-node send-buffer occupancy
};
inline constexpr std::size_t kNumGauges = 3;
const char* toString(Gauge g);

/// Profiling knobs. Environment overrides (read by fromEnv):
///   MANET_PROF=1              enable per-category stats collection
///   MANET_PROF_HIST=0         drop latency histograms (keep counts/time)
///   MANET_PROF_HEARTBEAT=<s>  progress heartbeat every <s> wall seconds
struct ProfConfig {
  bool enabled = false;
  bool histograms = true;
  double heartbeatSec = 0.0;

  /// True when a Profiler should be constructed at all (stats collection
  /// or heartbeat; the heartbeat works without full stats).
  bool installed() const { return enabled || heartbeatSec > 0.0; }

  static ProfConfig fromEnv(ProfConfig base);
  static ProfConfig fromEnv() { return fromEnv(ProfConfig{}); }
};

/// Log-scale latency histogram over nanosecond durations: exact below 4 ns,
/// then 4 linear sub-buckets per power of two (<= ~12.5% quantile error).
/// Fixed storage; recording is branch-free of allocation.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per octave
  static constexpr int kBuckets = 256;        // covers the full uint64 range

  void record(std::uint64_t ns);

  std::uint64_t count() const { return count_; }
  std::uint64_t totalNs() const { return totalNs_; }
  std::uint64_t maxNs() const { return maxNs_; }
  std::uint64_t bucketCount(int bucket) const {
    return counts_[static_cast<std::size_t>(bucket)];
  }

  /// Approximate percentile (p in [0,100]) by rank interpolation within the
  /// containing bucket; 0 when empty.
  double percentileNs(double p) const;

  static int bucketIndex(std::uint64_t ns);
  /// Inclusive lower bound of values mapping to `bucket`.
  static std::uint64_t bucketLowNs(int bucket);
  /// Exclusive upper bound of values mapping to `bucket` (saturated at
  /// uint64 max for the top buckets, whose true bound is not representable).
  static std::uint64_t bucketHighNs(int bucket);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t totalNs_ = 0;
  std::uint64_t maxNs_ = 0;
};

/// Point-in-time summary of one category.
struct CategoryReport {
  Category category = Category::kOther;
  std::uint64_t dispatches = 0;    // scheduler events charged here
  std::uint64_t scopes = 0;        // scope activations (incl. dispatches)
  std::uint64_t selfNs = 0;        // exclusive wall time
  std::uint64_t maxNs = 0;         // slowest single activation (self time)
  double p50Ns = 0.0;
  double p90Ns = 0.0;
  double p99Ns = 0.0;
};

/// One non-empty histogram bucket, exported for fan-out / horizon displays.
/// `low` is inclusive, `high` exclusive (saturated for the top buckets).
struct HistBucket {
  std::uint64_t low = 0;
  std::uint64_t high = 0;
  std::uint64_t count = 0;
};

/// Sentinel for scopes with no per-entity attribution.
inline constexpr std::uint32_t kNoEntity = 0xFFFFFFFFu;

/// Per-node attribution: scope activations, exclusive wall time and frames
/// heard, with the category split preserved. `activations` and
/// `framesHeard` are deterministic (pure event counts); `selfNs` is wall
/// time and varies run to run.
struct EntityReport {
  std::uint32_t node = 0;
  std::uint64_t activations = 0;  // scope activations at this node
  std::uint64_t selfNs = 0;       // exclusive wall time across categories
  std::uint64_t framesHeard = 0;  // receptions that touched this radio
  std::array<std::uint64_t, kNumCategories> categorySelfNs{};
  std::array<std::uint64_t, kNumCategories> categoryScopes{};
};

/// Channel broadcast fan-out: how many radios each transmission touched and
/// how many were inside the 250 m disc — the O(N) waste a spatial index
/// will reclaim. All fields are deterministic.
struct FanoutReport {
  std::uint64_t transmissions = 0;
  std::uint64_t radiosExamined = 0;  // distance checks performed
  std::uint64_t radiosInRange = 0;   // receivers actually scheduled
  std::uint64_t maxInRange = 0;      // densest single broadcast
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<HistBucket> buckets;  // in-range count distribution
};

/// One queue-depth sample, taken on a deterministic dispatch-count stride.
struct QueueSample {
  std::int64_t simNs = 0;
  std::uint64_t depth = 0;
};

/// Event-queue analytics: the horizon histogram (now -> fire-time at
/// scheduling) is exactly the per-bucket occupancy a calendar queue would
/// see, and the depth series sizes its bucket array. All deterministic.
struct QueueReport {
  std::uint64_t scheduled = 0;    // scheduleAt calls observed
  std::uint64_t zeroHorizon = 0;  // scheduled at the current instant
  std::uint64_t maxHorizonNs = 0;
  double horizonP50Ns = 0.0;
  double horizonP90Ns = 0.0;
  double horizonP99Ns = 0.0;
  std::vector<HistBucket> horizonBuckets;
  std::uint64_t depthPeak = 0;
  double depthMean = 0.0;
  std::vector<QueueSample> depthSamples;  // decimated time series
};

/// The hotspot layer's full output (see DESIGN.md "Hotspot observability").
struct HotspotReport {
  std::vector<EntityReport> entities;  // nodes with any recorded activity
  FanoutReport fanout;
  QueueReport queue;
  std::array<AllocSiteStats, kNumAllocSites> alloc{};
};

/// Everything the profiler learned about a run.
struct Report {
  bool enabled = false;
  std::array<CategoryReport, kNumCategories> categories{};
  std::array<std::uint64_t, kNumGauges> gaugePeaks{};
  std::uint64_t peakRssBytes = 0;
  std::uint64_t totalSelfNs = 0;
  std::uint64_t totalDispatches = 0;
  HotspotReport hotspot;
};

/// The run's per-category breakdown as one JSON object (used by the run
/// export and by bench/perf_baseline).
std::string toJson(const Report& r);

/// The hotspot sub-report alone (embedded in toJson; also used directly by
/// bench/perf_baseline for schema-v2 BENCH records).
std::string hotspotJson(const HotspotReport& h);

/// Process peak resident set size in bytes (VmHWM; getrusage fallback).
/// Returns 0 when unavailable.
std::uint64_t readPeakRssBytes();

class Scope;

namespace detail {
/// vdso CLOCK_MONOTONIC read (fallback, and the calibration reference).
std::uint64_t steadyNowNs();
/// One-time TSC calibration against steady_clock; 0 when unusable.
double tscNsPerTick();
}  // namespace detail

/// The profiler's default wall-clock read, inlined at every scope site.
/// On x86-64 this is a raw rdtsc (the invariant counter vdso
/// CLOCK_MONOTONIC is itself built on) scaled by a once-per-process
/// calibration — profilers read the clock several times per dispatched
/// event, and an out-of-line clock_gettime there costs >20% of a BENCH
/// run. Values feed reports only; they can never perturb the simulation.
inline std::uint64_t fastClockNs() {
#if defined(__x86_64__)
  static const double nsPerTick = detail::tscNsPerTick();
  if (nsPerTick > 0.0) {
    return static_cast<std::uint64_t>(
        static_cast<double>(__builtin_ia32_rdtsc()) * nsPerTick);
  }
#endif
  return detail::steadyNowNs();
}

/// Collects per-category self-time and occupancy peaks for one run.
/// Single-threaded, like the scheduler that drives it.
class Profiler {
 public:
  using ClockFn = std::uint64_t (*)();

  /// `clock` overrides the wall-clock source (tests); nullptr = monotonic
  /// steady clock. Construction installs this profiler's AllocTracker into
  /// the thread-local slot (when collecting); destruction uninstalls it, so
  /// it must outlive no allocation site it observes — owners order members
  /// accordingly (see net::Network).
  explicit Profiler(ProfConfig cfg, ClockFn clock = nullptr);
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// True when per-category stats are being collected (heartbeat-only
  /// profilers skip all scope work).
  bool collecting() const { return cfg_.enabled; }
  const ProfConfig& config() const { return cfg_; }

  /// Charge one scheduler dispatch to `c` (the scope around the handler
  /// accounts the time; this keeps the event count).
  void countDispatch(Category c) {
    if (cfg_.enabled) ++stats_[static_cast<std::size_t>(c)].dispatches;
  }

  /// Raise the peak of `g` to at least `v`.
  void notePeak(Gauge g, std::uint64_t v) {
    if (!cfg_.enabled) return;
    std::uint64_t& peak = gaugePeaks_[static_cast<std::size_t>(g)];
    if (v > peak) peak = v;
  }

  // ----- hotspot layer (every record path: one enabled/null check) -----

  /// Presize the per-entity table; called at node-construction time so the
  /// record path never allocates. Out-of-range entities are dropped.
  void ensureEntities(std::size_t n) {
    if (cfg_.enabled && entities_.size() < n) entities_.resize(n);
  }
  std::size_t entityCapacity() const { return entities_.size(); }

  /// One channel broadcast: `examined` distance checks, `inRange` receivers
  /// actually inside the disc.
  void recordFanout(std::uint32_t examined, std::uint32_t inRange) {
    if (!cfg_.enabled) return;
    ++fanoutTransmissions_;
    fanoutExamined_ += examined;
    fanoutInRange_ += inRange;
    fanoutHist_.record(inRange);
  }

  /// One frame reaching `node`'s radio (in range, radio up).
  void countFrameHeard(std::uint32_t node) {
    if (!cfg_.enabled) return;
    if (node < entities_.size()) ++entities_[node].framesHeard;
  }

  /// Event horizon (fire time minus now) of one scheduleAt call.
  void recordHorizon(std::int64_t horizonNs) {
    if (!cfg_.enabled) return;
    const std::uint64_t h =
        horizonNs > 0 ? static_cast<std::uint64_t>(horizonNs) : 0;
    if (h == 0) ++zeroHorizon_;
    horizonHist_.record(h);
  }

  /// Queue depth after one dispatch; samples the time series on a
  /// deterministic dispatch-count stride (never the wall clock).
  void noteQueueDepth(std::int64_t simNowNs, std::size_t depth) {
    if (!cfg_.enabled) return;
    ++depthTicks_;
    depthSum_ += depth;
    if (depth > depthPeak_) depthPeak_ = depth;
    if ((depthTicks_ & (depthStride_ - 1)) == 0) {
      pushDepthSample(simNowNs, depth);
    }
  }

  /// Forward an allocation event to the tracker (scheduler event site; the
  /// packet site uses AllocToken, the trace site AllocTracker::current()).
  void allocRecord(AllocSite s, std::uint64_t extraBytes = 0) {
    if (cfg_.enabled) tracker_.recordAlloc(s, extraBytes);
  }
  void allocRelease(AllocSite s) {
    if (cfg_.enabled) tracker_.releaseAlloc(s);
  }

  AllocTracker& allocTracker() { return tracker_; }

  /// Progress heartbeat, called by the scheduler after each dispatched
  /// event. Self-throttles: counter mask first, wall-clock check second,
  /// stderr line at most every heartbeatSec. No-op when heartbeatSec == 0.
  void heartbeat(std::int64_t simNowNs, std::int64_t simUntilNs,
                 std::uint64_t executed) {
    if (heartbeatPeriodNs_ == 0) return;
    if ((++hbTick_ & 0x3FF) != 0) return;
    heartbeatSlow(simNowNs, simUntilNs, executed);
  }

  Report report() const;

  /// Wall-clock read: injected test clock when present, else the inlined
  /// fast clock (see fastClockNs above).
  std::uint64_t clockNs() const {
    return clock_ != nullptr ? clock_() : fastClockNs();
  }

 private:
  friend class Scope;

  struct CategoryStats {
    std::uint64_t dispatches = 0;
    std::uint64_t scopes = 0;
    std::uint64_t selfNs = 0;
    LatencyHistogram latency;
  };

  struct EntityStats {
    std::array<std::uint64_t, kNumCategories> selfNs{};
    std::array<std::uint64_t, kNumCategories> scopes{};
    std::uint64_t framesHeard = 0;
  };

  void recordSelf(Category c, std::uint64_t selfNs,
                  std::uint32_t entity = kNoEntity) {
    const std::size_t ci = static_cast<std::size_t>(c);
    CategoryStats& s = stats_[ci];
    ++s.scopes;
    s.selfNs += selfNs;
    if (cfg_.histograms) s.latency.record(selfNs);
    if (entity < entities_.size()) {
      EntityStats& e = entities_[entity];
      ++e.scopes[ci];
      e.selfNs[ci] += selfNs;
    }
  }

  void pushDepthSample(std::int64_t simNs, std::uint64_t depth);

  void heartbeatSlow(std::int64_t simNowNs, std::int64_t simUntilNs,
                     std::uint64_t executed);

  ProfConfig cfg_;
  ClockFn clock_;
  Scope* current_ = nullptr;  // innermost open scope (single-threaded)
  std::array<CategoryStats, kNumCategories> stats_{};
  std::array<std::uint64_t, kNumGauges> gaugePeaks_{};
  // Hotspot layer: presized at setup (ensureEntities / reserve), so the
  // record paths stay allocation-free.
  std::vector<EntityStats> entities_;
  LatencyHistogram fanoutHist_;  // value = receivers per broadcast
  std::uint64_t fanoutTransmissions_ = 0;
  std::uint64_t fanoutExamined_ = 0;
  std::uint64_t fanoutInRange_ = 0;
  LatencyHistogram horizonHist_;  // value = now -> fire-time, ns
  std::uint64_t zeroHorizon_ = 0;
  std::uint64_t depthTicks_ = 0;
  std::uint64_t depthSum_ = 0;
  std::uint64_t depthPeak_ = 0;
  static constexpr std::size_t kMaxDepthSamples = 1024;
  std::uint64_t depthStride_ = 64;  // power of two; doubles when full
  std::vector<QueueSample> depthSamples_;
  AllocTracker tracker_;
  // Heartbeat state (wall-clock only; never influences the simulation).
  std::uint64_t heartbeatPeriodNs_ = 0;
  std::uint64_t hbTick_ = 0;
  std::uint64_t startWallNs_ = 0;
  std::uint64_t lastBeatWallNs_ = 0;
  std::int64_t lastBeatSimNs_ = 0;
  std::uint64_t lastBeatEvents_ = 0;
};

/// RAII self-time attribution. Inert (no clock read, no state) when the
/// profiler is null or not collecting. Nesting charges the inner scope's
/// elapsed time to the inner category and excludes it from the outer
/// scope's self time. Passing a node id as `entity` additionally charges
/// the self time and activation to that node's per-entity row.
class Scope {
 public:
  Scope(Profiler* p, Category c, std::uint32_t entity = kNoEntity)
      : cat_(c), entity_(entity) {
    if (p == nullptr || !p->collecting()) return;
    prof_ = p;
    startNs_ = p->clockNs();
    parent_ = p->current_;
    p->current_ = this;
  }

  ~Scope() {
    if (prof_ == nullptr) return;
    const std::uint64_t elapsed = prof_->clockNs() - startNs_;
    const std::uint64_t self = elapsed > childNs_ ? elapsed - childNs_ : 0;
    prof_->recordSelf(cat_, self, entity_);
    prof_->current_ = parent_;
    if (parent_ != nullptr) parent_->childNs_ += elapsed;
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Category cat_;
  std::uint32_t entity_;
  Profiler* prof_ = nullptr;
  Scope* parent_ = nullptr;
  std::uint64_t startNs_ = 0;
  std::uint64_t childNs_ = 0;
};

}  // namespace manet::prof
