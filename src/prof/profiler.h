// Self-profiling subsystem: where does simulator wall time go?
//
// The scheduler attributes wall-clock time and dispatch counts to event
// categories (PHY, MAC, routing, mobility, traffic, transport, fault,
// telemetry); subsystems refine the attribution with nested prof::Scope
// guards (e.g. DSR work performed inside a MAC reception event is charged
// to routing, not MAC — scopes track *self* time, excluding children).
// Per-category latency histograms, scheduler-queue high-water marks, cache
// occupancy peaks and peak RSS round out the picture, and an optional
// wall-clock heartbeat reports progress (events/sec, sim rate, ETA) on
// stderr during long sweeps.
//
// Design constraints:
//  * Branch-cheap when off: every hook is a null-pointer / bool check; a
//    disabled profiler performs no clock reads and no allocations.
//  * Zero allocations when on: all state is fixed-size arrays, so the
//    record path never touches the heap (asserted by tests).
//  * Deterministic: the profiler only ever *reads* the wall clock; it never
//    touches simulated time or any simulation RNG stream, so a profiled run
//    is bit-identical to an unprofiled run (asserted by tests).
//  * Testable: the wall clock is injectable (a plain function pointer), so
//    attribution and percentile tests are exact, not timing-dependent.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace manet::prof {

/// What kind of work an event or scope performs. Scheduler events carry
/// their category from the scheduling site; scopes refine attribution
/// within a handler.
enum class Category : std::uint8_t {
  kPhy,        // channel propagation, reception start/end
  kMac,        // 802.11 DCF: backoff, timeouts, SIFS responses
  kRouting,    // DSR / AODV protocol processing
  kMobility,   // position queries (random-waypoint evaluation)
  kTraffic,    // CBR source ticks
  kTransport,  // reliable-transport timers
  kFault,      // fault-injection events
  kTelemetry,  // sampler probes, invariant sweeps
  kOther,      // uncategorised events
};
inline constexpr std::size_t kNumCategories = 9;
const char* toString(Category c);

/// Peak-tracked occupancy gauges reported by the owning subsystems.
enum class Gauge : std::uint8_t {
  kRouteCacheEntries,  // per-node route/link cache entries
  kNegCacheEntries,    // per-node negative-cache entries
  kSendBufOccupancy,   // per-node send-buffer occupancy
};
inline constexpr std::size_t kNumGauges = 3;
const char* toString(Gauge g);

/// Profiling knobs. Environment overrides (read by fromEnv):
///   MANET_PROF=1              enable per-category stats collection
///   MANET_PROF_HIST=0         drop latency histograms (keep counts/time)
///   MANET_PROF_HEARTBEAT=<s>  progress heartbeat every <s> wall seconds
struct ProfConfig {
  bool enabled = false;
  bool histograms = true;
  double heartbeatSec = 0.0;

  /// True when a Profiler should be constructed at all (stats collection
  /// or heartbeat; the heartbeat works without full stats).
  bool installed() const { return enabled || heartbeatSec > 0.0; }

  static ProfConfig fromEnv(ProfConfig base);
  static ProfConfig fromEnv() { return fromEnv(ProfConfig{}); }
};

/// Log-scale latency histogram over nanosecond durations: exact below 4 ns,
/// then 4 linear sub-buckets per power of two (<= ~12.5% quantile error).
/// Fixed storage; recording is branch-free of allocation.
class LatencyHistogram {
 public:
  static constexpr int kSubBits = 2;
  static constexpr int kSub = 1 << kSubBits;  // sub-buckets per octave
  static constexpr int kBuckets = 256;        // covers the full uint64 range

  void record(std::uint64_t ns);

  std::uint64_t count() const { return count_; }
  std::uint64_t totalNs() const { return totalNs_; }
  std::uint64_t maxNs() const { return maxNs_; }

  /// Approximate percentile (p in [0,100]) by rank interpolation within the
  /// containing bucket; 0 when empty.
  double percentileNs(double p) const;

  static int bucketIndex(std::uint64_t ns);
  /// Inclusive lower bound of values mapping to `bucket`.
  static std::uint64_t bucketLowNs(int bucket);
  /// Exclusive upper bound of values mapping to `bucket` (saturated at
  /// uint64 max for the top buckets, whose true bound is not representable).
  static std::uint64_t bucketHighNs(int bucket);

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t totalNs_ = 0;
  std::uint64_t maxNs_ = 0;
};

/// Point-in-time summary of one category.
struct CategoryReport {
  Category category = Category::kOther;
  std::uint64_t dispatches = 0;    // scheduler events charged here
  std::uint64_t scopes = 0;        // scope activations (incl. dispatches)
  std::uint64_t selfNs = 0;        // exclusive wall time
  std::uint64_t maxNs = 0;         // slowest single activation (self time)
  double p50Ns = 0.0;
  double p90Ns = 0.0;
  double p99Ns = 0.0;
};

/// Everything the profiler learned about a run.
struct Report {
  bool enabled = false;
  std::array<CategoryReport, kNumCategories> categories{};
  std::array<std::uint64_t, kNumGauges> gaugePeaks{};
  std::uint64_t peakRssBytes = 0;
  std::uint64_t totalSelfNs = 0;
  std::uint64_t totalDispatches = 0;
};

/// The run's per-category breakdown as one JSON object (used by the run
/// export and by bench/perf_baseline).
std::string toJson(const Report& r);

/// Process peak resident set size in bytes (VmHWM; getrusage fallback).
/// Returns 0 when unavailable.
std::uint64_t readPeakRssBytes();

class Scope;

/// Collects per-category self-time and occupancy peaks for one run.
/// Single-threaded, like the scheduler that drives it.
class Profiler {
 public:
  using ClockFn = std::uint64_t (*)();

  /// `clock` overrides the wall-clock source (tests); nullptr = monotonic
  /// steady clock.
  explicit Profiler(ProfConfig cfg, ClockFn clock = nullptr);

  /// True when per-category stats are being collected (heartbeat-only
  /// profilers skip all scope work).
  bool collecting() const { return cfg_.enabled; }
  const ProfConfig& config() const { return cfg_; }

  /// Charge one scheduler dispatch to `c` (the scope around the handler
  /// accounts the time; this keeps the event count).
  void countDispatch(Category c) {
    if (cfg_.enabled) ++stats_[static_cast<std::size_t>(c)].dispatches;
  }

  /// Raise the peak of `g` to at least `v`.
  void notePeak(Gauge g, std::uint64_t v) {
    if (!cfg_.enabled) return;
    std::uint64_t& peak = gaugePeaks_[static_cast<std::size_t>(g)];
    if (v > peak) peak = v;
  }

  /// Progress heartbeat, called by the scheduler after each dispatched
  /// event. Self-throttles: counter mask first, wall-clock check second,
  /// stderr line at most every heartbeatSec. No-op when heartbeatSec == 0.
  void heartbeat(std::int64_t simNowNs, std::int64_t simUntilNs,
                 std::uint64_t executed) {
    if (heartbeatPeriodNs_ == 0) return;
    if ((++hbTick_ & 0x3FF) != 0) return;
    heartbeatSlow(simNowNs, simUntilNs, executed);
  }

  Report report() const;

  std::uint64_t clockNs() const { return clock_(); }

 private:
  friend class Scope;

  struct CategoryStats {
    std::uint64_t dispatches = 0;
    std::uint64_t scopes = 0;
    std::uint64_t selfNs = 0;
    LatencyHistogram latency;
  };

  void recordSelf(Category c, std::uint64_t selfNs) {
    CategoryStats& s = stats_[static_cast<std::size_t>(c)];
    ++s.scopes;
    s.selfNs += selfNs;
    if (cfg_.histograms) s.latency.record(selfNs);
  }

  void heartbeatSlow(std::int64_t simNowNs, std::int64_t simUntilNs,
                     std::uint64_t executed);

  ProfConfig cfg_;
  ClockFn clock_;
  Scope* current_ = nullptr;  // innermost open scope (single-threaded)
  std::array<CategoryStats, kNumCategories> stats_{};
  std::array<std::uint64_t, kNumGauges> gaugePeaks_{};
  // Heartbeat state (wall-clock only; never influences the simulation).
  std::uint64_t heartbeatPeriodNs_ = 0;
  std::uint64_t hbTick_ = 0;
  std::uint64_t startWallNs_ = 0;
  std::uint64_t lastBeatWallNs_ = 0;
  std::int64_t lastBeatSimNs_ = 0;
  std::uint64_t lastBeatEvents_ = 0;
};

/// RAII self-time attribution. Inert (no clock read, no state) when the
/// profiler is null or not collecting. Nesting charges the inner scope's
/// elapsed time to the inner category and excludes it from the outer
/// scope's self time.
class Scope {
 public:
  Scope(Profiler* p, Category c) : cat_(c) {
    if (p == nullptr || !p->collecting()) return;
    prof_ = p;
    startNs_ = p->clockNs();
    parent_ = p->current_;
    p->current_ = this;
  }

  ~Scope() {
    if (prof_ == nullptr) return;
    const std::uint64_t elapsed = prof_->clockNs() - startNs_;
    const std::uint64_t self = elapsed > childNs_ ? elapsed - childNs_ : 0;
    prof_->recordSelf(cat_, self);
    prof_->current_ = parent_;
    if (parent_ != nullptr) parent_->childNs_ += elapsed;
  }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Category cat_;
  Profiler* prof_ = nullptr;
  Scope* parent_ = nullptr;
  std::uint64_t startNs_ = 0;
  std::uint64_t childNs_ = 0;
};

}  // namespace manet::prof
