// Ad hoc On-demand Distance Vector routing (AODV, Perkins & Royer) —
// the comparison protocol of the paper's companion studies (Das, Perkins
// & Royer, INFOCOM 2000). RFC 3561 subset, in the configuration those
// studies used: link-layer failure feedback instead of hello messages.
//
// Where DSR caches complete source routes, AODV keeps one hop-by-hop route
// table entry per destination, guarded by destination sequence numbers —
// the "relative freshness" mechanism the paper's future work section
// wishes for in DSR. Intermediate nodes with a fresh-enough entry answer
// route requests, which is AODV's indirect use of caching.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_set>

#include "src/aodv/aodv_config.h"
#include "src/core/send_buffer.h"
#include "src/mac/dcf_mac.h"
#include "src/metrics/metrics.h"
#include "src/metrics/oracle.h"
#include "src/net/packet.h"
#include "src/net/routing_agent.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace manet::aodv {

class AodvAgent final : public net::RoutingAgent {
 public:
  struct RouteEntry {
    net::NodeId nextHop = 0;
    std::uint8_t hopCount = 0;
    std::uint32_t seqNo = 0;
    bool validSeq = false;
    bool valid = false;
    sim::Time expiresAt;
    /// Neighbors routing through us toward this destination (route error
    /// recipients when the route dies).
    std::unordered_set<net::NodeId> precursors;
  };

  AodvAgent(net::NodeId self, mac::DcfMac& mac, sim::Scheduler& sched,
            sim::Rng rng, const AodvConfig& cfg, metrics::Metrics* metrics,
            const metrics::LinkOracle* oracle);

  void sendData(net::NodeId dst, std::uint32_t payloadBytes,
                std::uint32_t flowId, std::uint64_t seqInFlow) override;
  net::NodeId id() const override { return self_; }

  // --- introspection ---
  const RouteEntry* route(net::NodeId dst) const;
  std::size_t routeTableSize() const { return routes_.size(); }

 private:
  struct DiscoveryState {
    bool active = false;
    sim::Time backoff;
    sim::EventId pendingEvent = sim::kInvalidEvent;
    /// Uid of the data packet that triggered this discovery; every RREQ of
    /// the discovery carries it as its causal parent.
    std::uint64_t causeUid = 0;
  };

  void onReceive(net::PacketPtr p, net::NodeId from);
  void onSendFailed(net::PacketPtr p, net::NodeId nextHop);

  void handleData(const net::PacketPtr& p, net::NodeId from);
  void handleRreq(const net::PacketPtr& p, net::NodeId from);
  void handleRrep(const net::PacketPtr& p, net::NodeId from);
  void handleRerr(const net::PacketPtr& p, net::NodeId from);

  void startDiscovery(net::NodeId target, std::uint64_t causeUid = 0);
  void onDiscoveryTimeout(net::NodeId target);
  void endDiscovery(net::NodeId target);
  void sendRreq(net::NodeId target);
  /// `causeUid` links the reply to the request it answers.
  void sendRrep(net::NodeId toward, const net::AodvRrepHdr& hdr,
                std::uint64_t causeUid);

  /// Update/refresh a route entry from observed traffic; returns true if
  /// the new information was accepted (fresher or shorter).
  bool updateRoute(net::NodeId dst, net::NodeId nextHop,
                   std::uint8_t hopCount, std::uint32_t seqNo, bool validSeq);
  void refreshLifetime(net::NodeId dst);
  void forwardData(const net::PacketPtr& p);
  void drainSendBuffer();
  /// `causeUid` (when nonzero) chains the resulting RERR broadcast to the
  /// packet whose transmission failure exposed the dead link.
  void invalidateVia(net::NodeId nextHop, std::uint64_t causeUid = 0);
  void periodicSweep();
  bool rreqSeen(net::NodeId origin, std::uint32_t id);

  net::NodeId self_;
  mac::DcfMac& mac_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  AodvConfig cfg_;
  metrics::Metrics* metrics_;
  const metrics::LinkOracle* oracle_;

  std::uint32_t ownSeq_ = 0;
  std::uint32_t rreqCounter_ = 0;
  /// Ordered: invalidateVia/periodicSweep iterate these to build RERR
  /// payloads and restart discoveries — both packet-emission order and RERR
  /// contents are simulation-visible, so hash order must not decide them.
  std::map<net::NodeId, RouteEntry> routes_;
  std::map<net::NodeId, DiscoveryState> discovery_;
  core::SendBuffer sendBuf_;
  std::unordered_set<std::uint64_t> seenRreqs_;
  std::deque<std::uint64_t> seenRreqsFifo_;
};

}  // namespace manet::aodv
