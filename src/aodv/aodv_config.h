// AODV configuration (RFC 3561 subset, link-layer feedback mode).
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/sim/time.h"

namespace manet::aodv {

struct AodvConfig {
  /// Route lifetime; refreshed whenever the route carries traffic.
  sim::Time activeRouteTimeout = sim::Time::seconds(10);
  /// How long to wait for a route reply before retrying the request.
  sim::Time discoveryTimeout = sim::Time::seconds(1);
  /// Binary-exponential backoff cap for repeated discoveries.
  sim::Time discoveryBackoffMax = sim::Time::seconds(10);
  std::uint8_t maxRequestTtl = 64;
  /// Per-hop rebroadcast jitter, breaking flood synchronization.
  sim::Time broadcastJitterMax = sim::Time::millis(10);
  /// Intermediate nodes with a fresh-enough route answer requests (AODV's
  /// indirect form of caching; disable to force destination-only replies).
  bool intermediateReplies = true;
  std::size_t sendBufferCapacity = 64;
  sim::Time sendBufferTimeout = sim::Time::seconds(30);
  /// Period of the route-table expiry sweep.
  sim::Time expirySweepPeriod = sim::Time::millis(500);
};

}  // namespace manet::aodv
