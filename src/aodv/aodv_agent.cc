#include "src/aodv/aodv_agent.h"

#include <algorithm>
#include <cassert>

namespace manet::aodv {
namespace {

constexpr std::size_t kSeenTableCapacity = 4096;

std::uint64_t seenKey(net::NodeId a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Sequence-number comparison with the usual "fresher" semantics (no
/// wraparound handling needed at simulation scales).
bool fresher(std::uint32_t a, std::uint32_t b) { return a > b; }

}  // namespace

AodvAgent::AodvAgent(net::NodeId self, mac::DcfMac& mac,
                     sim::Scheduler& sched, sim::Rng rng,
                     const AodvConfig& cfg, metrics::Metrics* metrics,
                     const metrics::LinkOracle* oracle)
    : self_(self),
      mac_(mac),
      sched_(sched),
      rng_(std::move(rng)),
      cfg_(cfg),
      metrics_(metrics),
      oracle_(oracle),
      sendBuf_(cfg.sendBufferCapacity, cfg.sendBufferTimeout) {
  mac_.setHandlers(mac::DcfMac::Handlers{
      .receive = [this](net::PacketPtr p,
                        net::NodeId from) { onReceive(std::move(p), from); },
      // AODV does not use promiscuous listening.
      .promiscuousTap = nullptr,
      .sendFailed =
          [this](net::PacketPtr p, net::NodeId nextHop) {
            onSendFailed(std::move(p), nextHop);
          },
      .sendOk = nullptr,
  });
  sched_.scheduleAfter(
      cfg_.expirySweepPeriod, [this] { periodicSweep(); },
      prof::Category::kRouting);
}

const AodvAgent::RouteEntry* AodvAgent::route(net::NodeId dst) const {
  auto it = routes_.find(dst);
  return it == routes_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------- sending

void AodvAgent::sendData(net::NodeId dst, std::uint32_t payloadBytes,
                         std::uint32_t flowId, std::uint64_t seqInFlow) {
  if (metrics_) ++metrics_->dataOriginated;
  // manet-lint: allow(causal-id): root origination — new application data
  // starts a causal chain, it has no parent packet
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kData;
  p->src = self_;
  p->dst = dst;
  p->payloadBytes = payloadBytes;
  p->originatedAt = sched_.now();
  p->flowId = flowId;
  p->seqInFlow = seqInFlow;

  auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.valid) {
    // Route-table hit: AODV's analogue of a cache hit.
    if (metrics_) {
      ++metrics_->cacheHits;
      if (oracle_ != nullptr &&
          !oracle_->linkValid(self_, it->second.nextHop, sched_.now())) {
        ++metrics_->invalidCacheHits;
      }
    }
    refreshLifetime(dst);
    mac_.send(std::move(p), it->second.nextHop, /*priority=*/false);
    return;
  }
  const std::uint64_t triggerUid = p->uid;
  auto evicted = sendBuf_.push(std::move(p), dst, sched_.now());
  if (metrics_) metrics_->dropSendBufferOverflow += evicted.size();
  startDiscovery(dst, triggerUid);
}

// ---------------------------------------------------------------- receive

void AodvAgent::onReceive(net::PacketPtr p, net::NodeId from) {
  // Runs inside the receiver's MAC/PHY event; charge AODV work to routing.
  prof::Scope profScope(sched_.profiler(), prof::Category::kRouting, self_);
  switch (p->kind) {
    case net::PacketKind::kData:
      handleData(p, from);
      break;
    case net::PacketKind::kRouteRequest:
      handleRreq(p, from);
      break;
    case net::PacketKind::kRouteReply:
      handleRrep(p, from);
      break;
    case net::PacketKind::kRouteError:
      handleRerr(p, from);
      break;
  }
}

void AodvAgent::handleData(const net::PacketPtr& p, net::NodeId from) {
  (void)from;
  if (p->dst == self_) {
    if (metrics_) {
      ++metrics_->dataDelivered;
      metrics_->bytesDelivered += p->payloadBytes;
      // manet-lint: allow(float-time): metrics-only delay sum; never read
      metrics_->delaySumSec += (sched_.now() - p->originatedAt).toSeconds();
    }
    return;
  }
  forwardData(p);
}

void AodvAgent::forwardData(const net::PacketPtr& p) {
  auto it = routes_.find(p->dst);
  if (it == routes_.end() || !it->second.valid) {
    // No route at a forwarder: drop and report unreachability.
    if (metrics_) ++metrics_->dropLinkFailNoSalvage;
    auto err = net::Packet::make();
    err->kind = net::PacketKind::kRouteError;
    err->src = self_;
    err->dst = net::kBroadcast;
    const std::uint32_t deadSeq =
        it != routes_.end() ? it->second.seqNo + 1 : 1;
    err->aodvRerr = net::AodvRerrHdr{{{p->dst, deadSeq}}};
    err->causeUid = p->uid;  // chain the RERR to the undeliverable packet
    mac_.send(std::move(err), net::kBroadcast, /*priority=*/true);
    return;
  }
  refreshLifetime(p->dst);
  // Also refresh the route back to the source (it is clearly in use).
  refreshLifetime(p->src);
  mac_.send(net::clone(*p), it->second.nextHop, /*priority=*/false);
}

// ------------------------------------------------------------------ RREQ

void AodvAgent::handleRreq(const net::PacketPtr& p, net::NodeId from) {
  assert(p->aodvRreq);
  const net::AodvRreqHdr& req = *p->aodvRreq;
  if (req.origin == self_) return;

  // Learn/refresh the route to the previous hop and to the originator.
  updateRoute(from, from, 1, 0, /*validSeq=*/false);
  updateRoute(req.origin, from, req.hopCount + 1, req.originSeq,
              /*validSeq=*/true);

  if (rreqSeen(req.origin, req.rreqId)) return;

  if (req.target == self_) {
    // RFC 3561: the destination bumps its sequence number so the reply is
    // at least as fresh as anything the request has seen.
    ownSeq_ = std::max(ownSeq_ + 1, req.targetSeq);
    if (metrics_) ++metrics_->targetRepliesGenerated;
    sendRrep(req.origin,
             net::AodvRrepHdr{.origin = req.origin,
                              .target = self_,
                              .targetSeq = ownSeq_,
                              .hopCount = 0,
                              .fromIntermediate = false},
             p->uid);
    return;
  }

  // Intermediate reply: a valid route at least as fresh as requested.
  if (cfg_.intermediateReplies) {
    auto it = routes_.find(req.target);
    if (it != routes_.end() && it->second.valid && it->second.validSeq &&
        (req.unknownTargetSeq || !fresher(req.targetSeq, it->second.seqNo))) {
      if (metrics_) {
        ++metrics_->cacheRepliesGenerated;
        ++metrics_->cacheHits;
        if (oracle_ != nullptr &&
            !oracle_->linkValid(self_, it->second.nextHop, sched_.now())) {
          ++metrics_->invalidCacheHits;
        }
      }
      sendRrep(req.origin,
               net::AodvRrepHdr{.origin = req.origin,
                                .target = req.target,
                                .targetSeq = it->second.seqNo,
                                .hopCount = it->second.hopCount,
                                .fromIntermediate = true},
               p->uid);
      return;
    }
  }

  if (req.ttl <= 1) return;
  auto fwd = net::clone(*p);
  fwd->aodvRreq->ttl = req.ttl - 1;
  fwd->aodvRreq->hopCount = req.hopCount + 1;
  const auto jitter = sim::Time::nanos(rng_.uniformInt(
      0, std::max<std::int64_t>(1, cfg_.broadcastJitterMax.ns())));
  sched_.scheduleAfter(
      jitter,
      [this, fwd = std::move(fwd)] {
        mac_.send(fwd, net::kBroadcast, /*priority=*/true);
      },
      prof::Category::kRouting);
}

void AodvAgent::sendRrep(net::NodeId toward, const net::AodvRrepHdr& hdr,
                         std::uint64_t causeUid) {
  auto it = routes_.find(toward);
  if (it == routes_.end() || !it->second.valid) return;  // reverse path died
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kRouteReply;
  p->src = self_;
  p->dst = toward;
  p->originatedAt = sched_.now();
  p->aodvRrep = hdr;
  p->causeUid = causeUid;  // reply answers that request
  // Precursor bookkeeping: the reverse next hop will route through us.
  if (hdr.target != self_) {
    auto fwdIt = routes_.find(hdr.target);
    if (fwdIt != routes_.end()) {
      fwdIt->second.precursors.insert(it->second.nextHop);
    }
  }
  mac_.send(std::move(p), it->second.nextHop, /*priority=*/true);
}

// ------------------------------------------------------------------ RREP

void AodvAgent::handleRrep(const net::PacketPtr& p, net::NodeId from) {
  assert(p->aodvRrep);
  const net::AodvRrepHdr& rep = *p->aodvRrep;
  updateRoute(from, from, 1, 0, /*validSeq=*/false);
  // Install/refresh the forward route to the target.
  updateRoute(rep.target, from, rep.hopCount + 1, rep.targetSeq,
              /*validSeq=*/true);

  if (rep.origin == self_) {
    if (metrics_) {
      ++metrics_->repliesReceived;
      if (oracle_ == nullptr || oracle_->linkValid(self_, from, sched_.now())) {
        ++metrics_->goodRepliesReceived;
      }
    }
    endDiscovery(rep.target);
    drainSendBuffer();
    return;
  }

  // Forward toward the originator along the reverse route.
  auto it = routes_.find(rep.origin);
  if (it == routes_.end() || !it->second.valid) return;
  auto fwd = net::clone(*p);
  ++fwd->aodvRrep->hopCount;
  // The node we forward to becomes a precursor of the forward route.
  auto fwdRoute = routes_.find(rep.target);
  if (fwdRoute != routes_.end()) {
    fwdRoute->second.precursors.insert(it->second.nextHop);
  }
  mac_.send(std::move(fwd), it->second.nextHop, /*priority=*/true);
}

// ------------------------------------------------------------------ RERR

void AodvAgent::handleRerr(const net::PacketPtr& p, net::NodeId from) {
  assert(p->aodvRerr);
  std::vector<std::pair<net::NodeId, std::uint32_t>> propagate;
  for (const auto& [dst, seq] : p->aodvRerr->unreachable) {
    auto it = routes_.find(dst);
    if (it == routes_.end() || !it->second.valid) continue;
    if (it->second.nextHop != from) continue;  // not routed via the sender
    it->second.valid = false;
    it->second.seqNo = std::max(it->second.seqNo, seq);
    it->second.validSeq = true;
    if (!it->second.precursors.empty()) propagate.emplace_back(dst, seq);
  }
  if (propagate.empty()) return;
  auto err = net::Packet::make();
  err->kind = net::PacketKind::kRouteError;
  err->src = self_;
  err->dst = net::kBroadcast;
  err->aodvRerr = net::AodvRerrHdr{std::move(propagate)};
  err->causeUid = p->uid;  // propagated RERR descends from the received one
  if (metrics_) ++metrics_->rerrWideRebroadcasts;
  mac_.send(std::move(err), net::kBroadcast, /*priority=*/true);
}

void AodvAgent::onSendFailed(net::PacketPtr p, net::NodeId nextHop) {
  if (metrics_) {
    ++metrics_->linkBreaksDetected;
    if (oracle_ != nullptr &&
        oracle_->linkValid(self_, nextHop, sched_.now())) {
      ++metrics_->fakeLinkBreaks;
    }
  }
  mac_.purgeNextHop(nextHop);
  invalidateVia(nextHop, p->uid);
  if (p->kind == net::PacketKind::kData && metrics_) {
    ++metrics_->dropLinkFailNoSalvage;  // AODV has no salvaging
  }
}

void AodvAgent::invalidateVia(net::NodeId nextHop, std::uint64_t causeUid) {
  std::vector<std::pair<net::NodeId, std::uint32_t>> unreachable;
  for (auto& [dst, entry] : routes_) {
    if (!entry.valid || entry.nextHop != nextHop) continue;
    entry.valid = false;
    ++entry.seqNo;  // invalidation bumps the sequence number (RFC 3561)
    if (!entry.precursors.empty() || dst == nextHop) {
      unreachable.emplace_back(dst, entry.seqNo);
    }
  }
  if (unreachable.empty()) return;
  auto err = net::Packet::make();
  err->kind = net::PacketKind::kRouteError;
  err->src = self_;
  err->dst = net::kBroadcast;
  err->aodvRerr = net::AodvRerrHdr{std::move(unreachable)};
  err->causeUid = causeUid;  // the packet whose failed send exposed the link
  mac_.send(std::move(err), net::kBroadcast, /*priority=*/true);
}

// ------------------------------------------------------------- discovery

void AodvAgent::startDiscovery(net::NodeId target, std::uint64_t causeUid) {
  DiscoveryState& st = discovery_[target];
  if (st.active) return;
  st.active = true;
  st.backoff = cfg_.discoveryTimeout;
  st.causeUid = causeUid;
  if (metrics_) ++metrics_->routeDiscoveriesStarted;
  sendRreq(target);
  st.pendingEvent = sched_.scheduleAfter(
      st.backoff, [this, target] { onDiscoveryTimeout(target); },
      prof::Category::kRouting);
}

void AodvAgent::onDiscoveryTimeout(net::NodeId target) {
  DiscoveryState& st = discovery_[target];
  st.pendingEvent = sim::kInvalidEvent;
  if (!st.active) return;
  auto it = routes_.find(target);
  if ((it != routes_.end() && it->second.valid) ||
      !sendBuf_.hasPacketsFor(target)) {
    endDiscovery(target);
    drainSendBuffer();
    return;
  }
  sendRreq(target);
  st.backoff = std::min(st.backoff + st.backoff, cfg_.discoveryBackoffMax);
  st.pendingEvent = sched_.scheduleAfter(
      st.backoff, [this, target] { onDiscoveryTimeout(target); },
      prof::Category::kRouting);
}

void AodvAgent::endDiscovery(net::NodeId target) {
  auto it = discovery_.find(target);
  if (it == discovery_.end()) return;
  sched_.cancel(it->second.pendingEvent);
  it->second.pendingEvent = sim::kInvalidEvent;
  it->second.active = false;
}

void AodvAgent::sendRreq(net::NodeId target) {
  ++ownSeq_;
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kRouteRequest;
  p->src = self_;
  p->dst = net::kBroadcast;
  p->originatedAt = sched_.now();
  p->causeUid = discovery_[target].causeUid;  // data pkt behind the discovery
  auto it = routes_.find(target);
  const bool haveSeq = it != routes_.end() && it->second.validSeq;
  p->aodvRreq = net::AodvRreqHdr{
      .origin = self_,
      .originSeq = ownSeq_,
      .rreqId = ++rreqCounter_,
      .target = target,
      .targetSeq = haveSeq ? it->second.seqNo : 0,
      .unknownTargetSeq = !haveSeq,
      .hopCount = 0,
      .ttl = cfg_.maxRequestTtl,
  };
  if (metrics_) ++metrics_->floodRequestsSent;
  mac_.send(std::move(p), net::kBroadcast, /*priority=*/true);
}

void AodvAgent::drainSendBuffer() {
  for (net::NodeId target : sendBuf_.destinations()) {
    auto it = routes_.find(target);
    if (it == routes_.end() || !it->second.valid) continue;
    for (auto& entry : sendBuf_.takeForDest(target)) {
      refreshLifetime(target);
      mac_.send(entry.packet, it->second.nextHop, /*priority=*/false);
    }
    endDiscovery(target);
  }
}

// ------------------------------------------------------------- route table

bool AodvAgent::updateRoute(net::NodeId dst, net::NodeId nextHop,
                            std::uint8_t hopCount, std::uint32_t seqNo,
                            bool validSeq) {
  if (dst == self_) return false;
  auto [it, inserted] = routes_.try_emplace(dst);
  RouteEntry& e = it->second;
  const bool accept =
      inserted || !e.valid ||
      (validSeq && e.validSeq && fresher(seqNo, e.seqNo)) ||
      (validSeq && !e.validSeq) ||
      (validSeq == e.validSeq && seqNo == e.seqNo &&
       hopCount < e.hopCount);
  if (!accept) {
    // Same-or-older information: still refresh the lifetime of an
    // identical next hop (the neighbor is clearly alive).
    if (e.valid && e.nextHop == nextHop) refreshLifetime(dst);
    return false;
  }
  e.nextHop = nextHop;
  e.hopCount = hopCount;
  if (validSeq) {
    e.seqNo = std::max(e.seqNo, seqNo);
    e.validSeq = true;
  }
  e.valid = true;
  e.expiresAt = sched_.now() + cfg_.activeRouteTimeout;
  return true;
}

void AodvAgent::refreshLifetime(net::NodeId dst) {
  auto it = routes_.find(dst);
  if (it != routes_.end() && it->second.valid) {
    it->second.expiresAt = sched_.now() + cfg_.activeRouteTimeout;
  }
}

void AodvAgent::periodicSweep() {
  const sim::Time now = sched_.now();
  const auto expired = sendBuf_.expire(now);
  if (metrics_) metrics_->dropSendBufferTimeout += expired.size();
  std::size_t invalidated = 0;
  for (auto& [dst, entry] : routes_) {
    if (entry.valid && entry.expiresAt <= now) {
      entry.valid = false;
      ++entry.seqNo;
      ++invalidated;
    }
  }
  if (metrics_) metrics_->expiredLinks += invalidated;
  for (auto& [target, st] : discovery_) {
    if (!st.active && sendBuf_.hasPacketsFor(target)) startDiscovery(target);
  }
  sched_.scheduleAfter(
      cfg_.expirySweepPeriod, [this] { periodicSweep(); },
      prof::Category::kRouting);
}

bool AodvAgent::rreqSeen(net::NodeId origin, std::uint32_t id) {
  const auto key = seenKey(origin, id);
  if (seenRreqs_.contains(key)) return true;
  seenRreqs_.insert(key);
  seenRreqsFifo_.push_back(key);
  if (seenRreqsFifo_.size() > kSeenTableCapacity) {
    seenRreqs_.erase(seenRreqsFifo_.front());
    seenRreqsFifo_.pop_front();
  }
  return false;
}

}  // namespace manet::aodv
