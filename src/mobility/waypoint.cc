#include "src/mobility/waypoint.h"

#include <algorithm>
#include <cassert>

namespace manet::mobility {

RandomWaypoint::RandomWaypoint(sim::Rng rng, const Params& p) {
  assert(p.maxSpeed > 0 && p.minSpeed > 0 && p.maxSpeed >= p.minSpeed);
  auto randomPoint = [&] {
    return Vec2{rng.uniform(0.0, p.field.x), rng.uniform(0.0, p.field.y)};
  };

  sim::Time t = sim::Time::zero();
  Vec2 pos = randomPoint();
  // As in the original CMU model: "each node begins the simulation by
  // remaining stationary for pause_time seconds" — so a pause time equal to
  // the run length means no mobility at all (the paper's pause = 500 s).
  if (p.pause > sim::Time::zero()) {
    legs_.push_back(Leg{t, t + p.pause, pos, pos});
    t += p.pause;
  }
  while (t < p.horizon) {
    const Vec2 dest = randomPoint();
    const double speed = rng.uniform(p.minSpeed, p.maxSpeed);
    const double dist = distance(pos, dest);
    // manet-lint: allow(float-time): kinematics are inherently real-valued;
    // fixed-op conversion, same seed -> same leg schedule.
    const sim::Time travel = sim::Time::fromSeconds(dist / speed);
    legs_.push_back(Leg{t, t + travel, pos, dest});
    t += travel;
    pos = dest;
    if (p.pause > sim::Time::zero() && t < p.horizon) {
      legs_.push_back(Leg{t, t + p.pause, pos, pos});
      t += p.pause;
    }
  }
}

Vec2 RandomWaypoint::positionAt(sim::Time t) const {
  assert(!legs_.empty());
  if (t <= legs_.front().start) return legs_.front().from;
  if (t >= legs_.back().end) return legs_.back().to;
  // Find the leg containing t: first leg with end > t. Try the cached leg
  // and its successor first (queries track sim time), then fall back to
  // the binary search.
  const auto contains = [&](std::size_t j) {
    return legs_[j].start <= t && t < legs_[j].end;
  };
  std::size_t i = cursor_;
  if (i >= legs_.size() || !contains(i)) {
    if (i + 1 < legs_.size() && contains(i + 1)) {
      i = i + 1;
    } else {
      i = static_cast<std::size_t>(
          std::upper_bound(
              legs_.begin(), legs_.end(), t,
              [](sim::Time v, const Leg& leg) { return v < leg.end; }) -
          legs_.begin());
    }
    cursor_ = i;
  }
  const Leg& leg = legs_[i];
  if (leg.end == leg.start) return leg.from;
  // manet-lint: allow(float-time): position interpolation is real-valued
  const double frac =
      (t - leg.start).toSeconds() / (leg.end - leg.start).toSeconds();
  return leg.from + (leg.to - leg.from) * frac;
}

}  // namespace manet::mobility
