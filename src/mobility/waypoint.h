// Random waypoint mobility (the paper's mobility model).
//
// Each node journeys from a random location to a random destination at a
// speed drawn uniformly from (minSpeed, maxSpeed]; on arrival it pauses for
// the configured pause time, then picks the next destination. Pause time is
// the paper's mobility knob: pause 0 s = constant motion, pause >= the run
// length = a static network.
#pragma once

#include <vector>

#include "src/mobility/mobility_model.h"
#include "src/sim/rng.h"

namespace manet::mobility {

class RandomWaypoint final : public MobilityModel {
 public:
  struct Params {
    Vec2 field{2200.0, 600.0};  // paper: 2200 m x 600 m rectangle
    double minSpeed = 0.1;      // m/s; avoids the RWP zero-speed pathology
    double maxSpeed = 20.0;     // m/s
    sim::Time pause = sim::Time::zero();
    sim::Time horizon = sim::Time::seconds(500);  // trajectory length
  };

  /// Precomputes the full trajectory up to `params.horizon` from `rng`
  /// (consumed by value so each node owns an independent stream).
  RandomWaypoint(sim::Rng rng, const Params& params);

  Vec2 positionAt(sim::Time t) const override;

  /// One motion or pause segment; `from == to` during pauses.
  struct Leg {
    sim::Time start;
    sim::Time end;
    Vec2 from;
    Vec2 to;
  };
  const std::vector<Leg>& legs() const { return legs_; }

 private:
  std::vector<Leg> legs_;
  // Last leg served: position queries track sim time, so the containing leg
  // is almost always the cached one or its successor — amortized O(1)
  // instead of a binary search per query. Pure cache (same answer either
  // way); models are owned by one scenario and queried single-threaded.
  mutable std::size_t cursor_ = 0;
};

}  // namespace manet::mobility
