// Abstract mobility interface: position as a pure function of time.
#pragma once

#include "src/sim/time.h"
#include "src/util/vec2.h"

namespace manet::mobility {

/// A node's trajectory. Implementations must be deterministic functions of
/// time so any layer (channel, oracle) can query positions without coupling
/// to a periodic position-update event.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;
  virtual Vec2 positionAt(sim::Time t) const = 0;
};

/// A node that never moves (unit tests, fixed topologies).
class StaticMobility final : public MobilityModel {
 public:
  explicit StaticMobility(Vec2 pos) : pos_(pos) {}
  Vec2 positionAt(sim::Time) const override { return pos_; }

 private:
  Vec2 pos_;
};

}  // namespace manet::mobility
