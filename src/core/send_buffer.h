// DSR send buffer: data packets waiting at the source for a route.
//
// Per the paper's model: 64 packets, buffering only at the traffic source,
// packets dropped after waiting 30 seconds.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace manet::core {

class SendBuffer {
 public:
  struct Entry {
    net::PacketPtr packet;
    net::NodeId dest;
    sim::Time enqueuedAt;
  };

  SendBuffer(std::size_t capacity, sim::Time timeout)
      : capacity_(capacity), timeout_(timeout) {}

  /// Buffer a packet awaiting a route to `dest`. If full, the oldest entry
  /// is evicted and returned so the caller can count the drop.
  std::vector<Entry> push(net::PacketPtr pkt, net::NodeId dest, sim::Time now);

  /// Remove and return all packets waiting for `dest` (a route was found).
  std::vector<Entry> takeForDest(net::NodeId dest);

  /// Remove and return entries older than the timeout (to be dropped).
  std::vector<Entry> expire(sim::Time now);

  bool hasPacketsFor(net::NodeId dest) const;
  /// Distinct destinations currently waiting for a route.
  std::vector<net::NodeId> destinations() const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::size_t capacity_;
  sim::Time timeout_;
  std::deque<Entry> entries_;
};

}  // namespace manet::core
