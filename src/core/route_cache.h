// DSR path route cache.
//
// A *path cache* (as in the CMU Monarch ns-2 DSR and this paper — contrast
// with the link caches of Hu & Johnson) stores complete source routes, each
// beginning at the caching node. A route to destination D is the shortest
// stored path prefix ending at D.
//
// For the paper's timer-based expiry technique every link carries a
// last-used timestamp, refreshed whenever the node sees the link in a
// unicast packet it forwards; expire() prunes the portion of each path whose
// links have gone unused longer than the timeout.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/core/cache_structure.h"
#include "src/net/packet.h"
#include "src/sim/time.h"

namespace manet::core {

class RouteCache final : public RouteCacheBase {
 public:
  struct CachedPath {
    std::vector<net::NodeId> hops;  // hops.front() == owning node
    sim::Time addedAt;              // insertion / refresh time
    net::RouteProvenance prov{};    // birth record (id 0 = untracked insert)
  };

  RouteCache(net::NodeId owner, std::size_t capacity);

  net::NodeId owner() const { return owner_; }
  std::size_t size() const override { return paths_.size(); }
  std::size_t capacity() const { return capacity_; }
  const std::vector<CachedPath>& paths() const { return paths_; }

  /// Insert a path (hops.front() must equal owner(); length >= 2;
  /// loop-free). Invalid paths are rejected; re-inserting an existing path
  /// keeps its original addedAt and provenance (lifetime samples measure age
  /// since first learned). When full, the oldest path is evicted (FIFO).
  bool insert(std::span<const net::NodeId> hops, sim::Time now,
              net::RouteOrigin origin = net::RouteOrigin::kNone) override;

  /// Shortest cached route from owner to `dest` (a prefix of any stored path
  /// works, since every stored node is reachable along the way). Ties break
  /// to the most recently added path. With `acceptLink`, candidates using a
  /// rejected link are skipped — other cached paths still serve. The result
  /// carries the winning path's provenance.
  std::optional<RouteLookup> lookup(
      net::NodeId dest, const LinkFilter& acceptLink = {}) const override;

  bool hasRouteTo(net::NodeId dest) const { return findRoute(dest).has_value(); }

  /// True if any stored path uses the directed link.
  bool containsLink(net::LinkId link) const override;

  /// Remove a broken link: every path using it is truncated just before the
  /// link (dropped entirely if nothing routable remains). Returns the
  /// addedAt times of the affected paths — the adaptive-timeout estimator
  /// uses them as route-lifetime samples.
  std::vector<sim::Time> removeLink(net::LinkId link, sim::Time now) override;

  /// Refresh last-used timestamps for every link of `route` (called when the
  /// owner forwards a unicast packet carrying that source route).
  void markLinksUsed(std::span<const net::NodeId> route,
                     sim::Time now) override;

  /// Timer-based expiry: truncate each path at its first link unused since
  /// `cutoff` (links never seen in traffic keep their insertion time).
  /// Returns the number of links pruned.
  std::size_t expireUnusedSince(sim::Time cutoff) override;

  void clear() override;
  void forEachRoute(const RouteVisitor& visit) const override;

 private:
  void dropUnroutable();
  sim::Time linkLastUsed(net::LinkId link, sim::Time addedAt) const;

  net::NodeId owner_;
  std::size_t capacity_;
  std::vector<CachedPath> paths_;  // insertion order == FIFO order
  /// Link usage timestamps shared across paths (a link may appear in many).
  std::unordered_map<net::LinkId, sim::Time, net::LinkIdHash> lastUsed_;
};

}  // namespace manet::core
