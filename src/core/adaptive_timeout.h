// Adaptive timeout selection for timer-based route expiry (Section 3).
//
// Each node picks its expiry timeout T locally from observed route
// stability:
//
//     T = max(alpha * avg_route_lifetime, time_since_last_link_break)
//
// A broken route's lifetime is the elapsed time since it entered the cache;
// the average runs over all breaks seen so far. The second term corrects T
// upward during quiet periods: if breaks come in bursts separated by long
// stable stretches, the lifetime average alone would keep expiring perfectly
// good routes. T is clamped below (1 s) and recomputed periodically (every
// 0.5 s in the paper).
#pragma once

#include <cstdint>

#include "src/sim/time.h"

namespace manet::core {

class AdaptiveTimeout {
 public:
  AdaptiveTimeout(double alpha, sim::Time minTimeout)
      : alpha_(alpha), minTimeout_(minTimeout) {}

  /// Record that a cached route added at `addedAt` broke at `now` (link
  /// layer feedback or route error).
  void onRouteBreak(sim::Time addedAt, sim::Time now);

  /// Record a link break without an associated cached-route lifetime (e.g.
  /// an error about a link we never cached); only refreshes the last-break
  /// clock.
  void onLinkBreak(sim::Time now) { lastBreakAt_ = now; }

  /// Current timeout value. Before any break is observed there is nothing to
  /// adapt to, so T grows with time-since-start (effectively no expiry).
  sim::Time timeout(sim::Time now) const;

  double avgRouteLifetimeSec() const {
    return samples_ == 0 ? 0.0 : lifetimeSumSec_ / static_cast<double>(samples_);
  }
  std::uint64_t sampleCount() const { return samples_; }

 private:
  double alpha_;
  sim::Time minTimeout_;
  double lifetimeSumSec_ = 0.0;
  std::uint64_t samples_ = 0;
  sim::Time lastBreakAt_ = sim::Time::zero();
};

}  // namespace manet::core
