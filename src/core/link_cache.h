// Graph-based link cache (the alternative cache organization of
// Hu & Johnson, MobiCom'00), contrasted with the paper's path cache.
//
// Each learned source route is decomposed into directed links in a graph;
// routes are recovered on demand by breadth-first search (all links cost
// one hop, so BFS == Dijkstra here). Link caches extract more information
// from each overheard route — links from different routes combine into new
// paths — at the price of composing possibly-stale links that were never
// observed together.
#pragma once

#include <cstddef>
#include <map>
#include <unordered_map>
#include <vector>

#include "src/core/cache_structure.h"

namespace manet::core {

class LinkCache final : public RouteCacheBase {
 public:
  /// `capacity` bounds the number of stored links; the oldest (by addedAt)
  /// is evicted when full.
  LinkCache(net::NodeId owner, std::size_t capacity);

  /// Decompose `hops` into directed links. All links newly created by one
  /// insertion share one minted provenance record (they are one cache
  /// decision); re-learned links keep the provenance of their first entry.
  bool insert(std::span<const net::NodeId> hops, sim::Time now,
              net::RouteOrigin origin = net::RouteOrigin::kNone) override;
  /// BFS shortest path. The result's provenance is that of the *oldest*
  /// constituent link (earliest bornAt, ties to the smaller provenance id):
  /// a composed route is only as fresh as its stalest link, so that is the
  /// entry a later failure on this route gets attributed to.
  std::optional<RouteLookup> lookup(
      net::NodeId dest, const LinkFilter& acceptLink = {}) const override;
  bool containsLink(net::LinkId link) const override;
  std::vector<sim::Time> removeLink(net::LinkId link, sim::Time now) override;
  void markLinksUsed(std::span<const net::NodeId> route,
                     sim::Time now) override;
  std::size_t expireUnusedSince(sim::Time cutoff) override;
  void clear() override;
  std::size_t size() const override { return links_.size(); }
  /// Visits each stored link as a two-node route.
  void forEachRoute(const RouteVisitor& visit) const override;

  net::NodeId owner() const { return owner_; }

 private:
  struct LinkInfo {
    sim::Time addedAt;
    sim::Time lastUsed;
    net::RouteProvenance prov{};  // birth record (id 0 = untracked insert)
  };

  void evictOldest();

  net::NodeId owner_;
  std::size_t capacity_;
  /// Ordered so every whole-cache walk (eviction tie-breaks, expiry,
  /// forEachRoute) sees links in (from, to) order on any standard library —
  /// the eviction victim and visitor order are simulation-visible.
  std::map<net::LinkId, LinkInfo> links_;
  /// Forward adjacency for the BFS (kept in sync with links_; point lookups
  /// only — neighbor order inside each vector is insertion order).
  std::unordered_map<net::NodeId, std::vector<net::NodeId>> adj_;
};

}  // namespace manet::core
