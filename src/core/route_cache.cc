#include "src/core/route_cache.h"

#include <algorithm>
#include <limits>

namespace manet::core {

RouteCache::RouteCache(net::NodeId owner, std::size_t capacity)
    : owner_(owner), capacity_(capacity) {}

bool RouteCache::insert(std::span<const net::NodeId> hops, sim::Time now,
                        net::RouteOrigin origin) {
  if (hops.size() < 2 || hops.front() != owner_) return false;
  if (net::routeHasDuplicates(hops)) return false;

  std::vector<net::NodeId> path(hops.begin(), hops.end());
  // Already cached: keep the original addedAt and provenance. Forwarders
  // re-learn the same route from every packet they relay; refreshing the
  // timestamp here would collapse the route-lifetime samples the adaptive
  // timeout feeds on (lifetime = break time - time the route was first
  // entered), and re-stamping provenance would hide which insertion
  // actually created the entry.
  for (const CachedPath& p : paths_) {
    if (p.hops == path) return true;
  }
  if (paths_.size() >= capacity_) {
    paths_.erase(paths_.begin());  // FIFO eviction
    traceCacheEvent(telemetry::TraceEvent::kCacheEvict, 1);
  }
  // New links start their usage clock at insertion time.
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    lastUsed_.try_emplace(net::LinkId{path[i], path[i + 1]}, now);
  }
  net::RouteProvenance prov;
  if (origin != net::RouteOrigin::kNone) {
    prov = net::RouteProvenance::next(origin, owner_, now, path.size());
  }
  paths_.push_back(CachedPath{std::move(path), now, prov});
  traceCacheInsert(prov, 1);
  return true;
}

std::optional<RouteLookup> RouteCache::lookup(
    net::NodeId dest, const LinkFilter& acceptLink) const {
  const CachedPath* best = nullptr;
  std::size_t bestLen = std::numeric_limits<std::size_t>::max();
  for (const CachedPath& p : paths_) {
    auto it = std::find(p.hops.begin(), p.hops.end(), dest);
    if (it == p.hops.end() || it == p.hops.begin()) continue;
    const auto len = static_cast<std::size_t>(it - p.hops.begin()) + 1;
    // Shortest wins; among equals the later (more recently added) one.
    if (len > bestLen) continue;
    if (acceptLink) {
      bool ok = true;
      for (std::size_t i = 0; i + 1 < len; ++i) {
        if (!acceptLink(net::LinkId{p.hops[i], p.hops[i + 1]})) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
    }
    best = &p;
    bestLen = len;
  }
  if (best == nullptr) return std::nullopt;
  RouteLookup out;
  out.hops.assign(best->hops.begin(),
                  best->hops.begin() + static_cast<std::ptrdiff_t>(bestLen));
  out.prov = best->prov;
  return out;
}

bool RouteCache::containsLink(net::LinkId link) const {
  return std::any_of(paths_.begin(), paths_.end(), [&](const CachedPath& p) {
    return net::routeContainsLink(p.hops, link);
  });
}

std::vector<sim::Time> RouteCache::removeLink(net::LinkId link,
                                              sim::Time /*now*/) {
  std::vector<sim::Time> affected;
  for (CachedPath& p : paths_) {
    for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
      if (p.hops[i] == link.from && p.hops[i + 1] == link.to) {
        affected.push_back(p.addedAt);
        p.hops.resize(i + 1);  // truncate at the point of failure
        break;
      }
    }
  }
  lastUsed_.erase(link);
  dropUnroutable();
  return affected;
}

void RouteCache::markLinksUsed(std::span<const net::NodeId> route,
                               sim::Time now) {
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    auto it = lastUsed_.find(net::LinkId{route[i], route[i + 1]});
    if (it != lastUsed_.end()) it->second = now;
  }
}

sim::Time RouteCache::linkLastUsed(net::LinkId link, sim::Time addedAt) const {
  auto it = lastUsed_.find(link);
  return it != lastUsed_.end() ? std::max(it->second, addedAt) : addedAt;
}

std::size_t RouteCache::expireUnusedSince(sim::Time cutoff) {
  std::size_t pruned = 0;
  for (CachedPath& p : paths_) {
    for (std::size_t i = 0; i + 1 < p.hops.size(); ++i) {
      const net::LinkId link{p.hops[i], p.hops[i + 1]};
      if (linkLastUsed(link, p.addedAt) < cutoff) {
        pruned += p.hops.size() - (i + 1);
        p.hops.resize(i + 1);
        break;
      }
    }
  }
  dropUnroutable();
  if (pruned > 0) {
    traceCacheEvent(telemetry::TraceEvent::kCacheExpire,
                    static_cast<std::int64_t>(pruned));
  }
  return pruned;
}

void RouteCache::clear() {
  paths_.clear();
  lastUsed_.clear();
}

void RouteCache::forEachRoute(const RouteVisitor& visit) const {
  for (const CachedPath& p : paths_) visit(p.hops);
}

void RouteCache::dropUnroutable() {
  std::erase_if(paths_,
                [](const CachedPath& p) { return p.hops.size() < 2; });
}

}  // namespace manet::core
