#include "src/core/negative_cache.h"

#include <algorithm>

namespace manet::core {

NegativeCache::NegativeCache(std::size_t capacity, sim::Time ttl)
    : capacity_(capacity), ttl_(ttl) {}

void NegativeCache::insert(net::LinkId link, sim::Time now) {
  expire(now);
  auto it = expiry_.find(link);
  if (it != expiry_.end()) {
    it->second = now + ttl_;
    // Refresh FIFO position.
    auto pos = std::find(fifo_.begin(), fifo_.end(), link);
    if (pos != fifo_.end()) fifo_.erase(pos);
    fifo_.push_back(link);
    return;
  }
  if (expiry_.size() >= capacity_ && !fifo_.empty()) {
    expiry_.erase(fifo_.front());
    fifo_.pop_front();
  }
  expiry_.emplace(link, now + ttl_);
  fifo_.push_back(link);
  traceNegEvent(telemetry::TraceEvent::kNegCacheInsert, link);
}

bool NegativeCache::contains(net::LinkId link, sim::Time now) {
  auto it = expiry_.find(link);
  if (it == expiry_.end()) return false;
  if (it->second <= now) {
    expiry_.erase(it);
    auto pos = std::find(fifo_.begin(), fifo_.end(), link);
    if (pos != fifo_.end()) fifo_.erase(pos);
    traceNegEvent(telemetry::TraceEvent::kNegCacheExpire, link);
    return false;
  }
  return true;
}

void NegativeCache::erase(net::LinkId link) {
  if (expiry_.erase(link) > 0) {
    auto pos = std::find(fifo_.begin(), fifo_.end(), link);
    if (pos != fifo_.end()) fifo_.erase(pos);
  }
}

std::size_t NegativeCache::size(sim::Time now) {
  expire(now);
  return expiry_.size();
}

void NegativeCache::expire(sim::Time now) {
  while (!fifo_.empty()) {
    auto it = expiry_.find(fifo_.front());
    if (it == expiry_.end()) {
      fifo_.pop_front();
      continue;
    }
    if (it->second > now) break;  // FIFO front has the earliest expiry only
                                  // approximately; refreshes reorder — do a
                                  // full sweep below when the front is stale.
    const net::LinkId gone = it->first;
    expiry_.erase(it);
    fifo_.pop_front();
    traceNegEvent(telemetry::TraceEvent::kNegCacheExpire, gone);
  }
}

void NegativeCache::traceNegEvent(telemetry::TraceEvent event,
                                  net::LinkId link) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  telemetry::TraceRecord r;
  r.at = tracer_->now();
  r.event = event;
  r.node = traceOwner_;
  r.src = link.from;
  r.dst = link.to;
  tracer_->emit(r);
}

}  // namespace manet::core
