#include "src/core/negative_cache.h"

#include <algorithm>

namespace manet::core {

NegativeCache::NegativeCache(std::size_t capacity, sim::Time ttl)
    : capacity_(capacity), ttl_(ttl) {}

void NegativeCache::insert(net::LinkId link, sim::Time now,
                           net::RouteOrigin origin) {
  expire(now);
  auto it = expiry_.find(link);
  if (it != expiry_.end()) {
    it->second.expiresAt = now + ttl_;
    // Refresh FIFO position; the entry keeps its original provenance (the
    // quarantine is one decision, however often re-confirmed).
    auto pos = std::find(fifo_.begin(), fifo_.end(), link);
    if (pos != fifo_.end()) fifo_.erase(pos);
    fifo_.push_back(link);
    return;
  }
  if (expiry_.size() >= capacity_ && !fifo_.empty()) {
    expiry_.erase(fifo_.front());
    fifo_.pop_front();
  }
  net::RouteProvenance prov;
  if (origin != net::RouteOrigin::kNone) {
    prov = net::RouteProvenance::next(origin, traceOwner_, now, 2);
  }
  expiry_.emplace(link, Entry{now + ttl_, prov});
  fifo_.push_back(link);
  traceNegEvent(telemetry::TraceEvent::kNegCacheInsert, link, prov);
}

bool NegativeCache::contains(net::LinkId link, sim::Time now) {
  auto it = expiry_.find(link);
  if (it == expiry_.end()) return false;
  if (it->second.expiresAt <= now) {
    const net::RouteProvenance prov = it->second.prov;
    expiry_.erase(it);
    auto pos = std::find(fifo_.begin(), fifo_.end(), link);
    if (pos != fifo_.end()) fifo_.erase(pos);
    traceNegEvent(telemetry::TraceEvent::kNegCacheExpire, link, prov);
    return false;
  }
  return true;
}

void NegativeCache::erase(net::LinkId link) {
  if (expiry_.erase(link) > 0) {
    auto pos = std::find(fifo_.begin(), fifo_.end(), link);
    if (pos != fifo_.end()) fifo_.erase(pos);
  }
}

std::size_t NegativeCache::size(sim::Time now) {
  expire(now);
  return expiry_.size();
}

void NegativeCache::expire(sim::Time now) {
  while (!fifo_.empty()) {
    auto it = expiry_.find(fifo_.front());
    if (it == expiry_.end()) {
      fifo_.pop_front();
      continue;
    }
    if (it->second.expiresAt > now) break;
                                  // FIFO front has the earliest expiry only
                                  // approximately; refreshes reorder — do a
                                  // full sweep below when the front is stale.
    const net::LinkId gone = it->first;
    const net::RouteProvenance prov = it->second.prov;
    expiry_.erase(it);
    fifo_.pop_front();
    traceNegEvent(telemetry::TraceEvent::kNegCacheExpire, gone, prov);
  }
}

void NegativeCache::traceNegEvent(telemetry::TraceEvent event,
                                  net::LinkId link,
                                  const net::RouteProvenance& prov) {
  if (tracer_ == nullptr || !tracer_->enabled()) return;
  telemetry::TraceRecord r;
  r.at = tracer_->now();
  r.event = event;
  r.node = traceOwner_;
  r.src = link.from;
  r.dst = link.to;
  r.prov = prov;
  tracer_->emit(r);
}

}  // namespace manet::core
