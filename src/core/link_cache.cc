#include "src/core/link_cache.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace manet::core {

const char* toString(CacheStructure s) {
  switch (s) {
    case CacheStructure::kPath:
      return "path";
    case CacheStructure::kLink:
      return "link";
  }
  return "?";
}

LinkCache::LinkCache(net::NodeId owner, std::size_t capacity)
    : owner_(owner), capacity_(capacity) {}

bool LinkCache::insert(std::span<const net::NodeId> hops, sim::Time now,
                       net::RouteOrigin origin) {
  if (hops.size() < 2 || hops.front() != owner_) return false;
  if (net::routeHasDuplicates(hops)) return false;
  // One provenance record per insertion, minted lazily on the first link
  // actually stored and shared by every new link from this route: the
  // insertion is one cache decision even though it creates many entries.
  net::RouteProvenance prov;
  std::int64_t newLinks = 0;
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const net::LinkId link{hops[i], hops[i + 1]};
    auto [it, inserted] = links_.try_emplace(link, LinkInfo{now, now, {}});
    if (inserted) {
      if (prov.id == 0 && origin != net::RouteOrigin::kNone) {
        prov = net::RouteProvenance::next(origin, owner_, now, hops.size());
      }
      it->second.prov = prov;
      ++newLinks;
      if (links_.size() > capacity_) {
        // Undo bookkeeping order: add adjacency first so eviction of the
        // just-inserted link (if it is somehow oldest) stays consistent.
        adj_[link.from].push_back(link.to);
        evictOldest();
        continue;
      }
      adj_[link.from].push_back(link.to);
    }
    // Re-learning an existing link refreshes neither addedAt nor lastUsed
    // nor provenance (matching the path cache's first-entered semantics).
  }
  if (newLinks > 0) traceCacheInsert(prov, newLinks);
  return true;
}

std::optional<RouteLookup> LinkCache::lookup(
    net::NodeId dest, const LinkFilter& acceptLink) const {
  if (dest == owner_) return std::nullopt;
  // Unweighted shortest path => BFS from the owner.
  std::unordered_map<net::NodeId, net::NodeId> parent;
  std::deque<net::NodeId> frontier{owner_};
  parent.emplace(owner_, owner_);
  while (!frontier.empty()) {
    const net::NodeId u = frontier.front();
    frontier.pop_front();
    if (u == dest) break;
    auto it = adj_.find(u);
    if (it == adj_.end()) continue;
    for (net::NodeId v : it->second) {
      if (parent.contains(v)) continue;
      if (acceptLink && !acceptLink(net::LinkId{u, v})) continue;
      parent.emplace(v, u);
      frontier.push_back(v);
    }
  }
  if (!parent.contains(dest)) return std::nullopt;
  std::vector<net::NodeId> route{dest};
  for (net::NodeId n = dest; n != owner_; n = parent.at(n)) {
    route.push_back(parent.at(n));
  }
  std::reverse(route.begin(), route.end());
  RouteLookup out{std::move(route), {}};
  // Attribute the composed route to its stalest ingredient: the oldest
  // constituent link (ties to the smaller provenance id, so the choice is
  // deterministic and independent of map iteration).
  for (std::size_t i = 0; i + 1 < out.hops.size(); ++i) {
    auto it = links_.find(net::LinkId{out.hops[i], out.hops[i + 1]});
    if (it == links_.end() || it->second.prov.id == 0) continue;
    const net::RouteProvenance& p = it->second.prov;
    if (out.prov.id == 0 || p.bornAt < out.prov.bornAt ||
        (p.bornAt == out.prov.bornAt && p.id < out.prov.id)) {
      out.prov = p;
    }
  }
  return out;
}

bool LinkCache::containsLink(net::LinkId link) const {
  return links_.contains(link);
}

std::vector<sim::Time> LinkCache::removeLink(net::LinkId link,
                                             sim::Time /*now*/) {
  auto it = links_.find(link);
  if (it == links_.end()) return {};
  std::vector<sim::Time> affected{it->second.addedAt};
  links_.erase(it);
  auto adjIt = adj_.find(link.from);
  if (adjIt != adj_.end()) {
    std::erase(adjIt->second, link.to);
    if (adjIt->second.empty()) adj_.erase(adjIt);
  }
  return affected;
}

void LinkCache::markLinksUsed(std::span<const net::NodeId> route,
                              sim::Time now) {
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    auto it = links_.find(net::LinkId{route[i], route[i + 1]});
    if (it != links_.end()) it->second.lastUsed = now;
  }
}

std::size_t LinkCache::expireUnusedSince(sim::Time cutoff) {
  std::size_t pruned = 0;
  for (auto it = links_.begin(); it != links_.end();) {
    if (it->second.lastUsed < cutoff) {
      auto adjIt = adj_.find(it->first.from);
      if (adjIt != adj_.end()) {
        std::erase(adjIt->second, it->first.to);
        if (adjIt->second.empty()) adj_.erase(adjIt);
      }
      it = links_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  if (pruned > 0) {
    traceCacheEvent(telemetry::TraceEvent::kCacheExpire,
                    static_cast<std::int64_t>(pruned));
  }
  return pruned;
}

void LinkCache::clear() {
  links_.clear();
  adj_.clear();
}

void LinkCache::forEachRoute(const RouteVisitor& visit) const {
  for (const auto& [link, info] : links_) {
    const net::NodeId hops[2] = {link.from, link.to};
    visit(hops);
  }
}

void LinkCache::evictOldest() {
  auto oldest = links_.end();
  sim::Time oldestTime = sim::Time::max();
  for (auto it = links_.begin(); it != links_.end(); ++it) {
    if (it->second.addedAt < oldestTime) {
      oldestTime = it->second.addedAt;
      oldest = it;
    }
  }
  if (oldest == links_.end()) return;
  const net::LinkId victim = oldest->first;
  links_.erase(oldest);
  traceCacheEvent(telemetry::TraceEvent::kCacheEvict, 1);
  auto adjIt = adj_.find(victim.from);
  if (adjIt != adj_.end()) {
    std::erase(adjIt->second, victim.to);
    if (adjIt->second.empty()) adj_.erase(adjIt);
  }
}

}  // namespace manet::core
