// Abstract route-cache structure.
//
// The paper (footnote 1, and the contrast with Hu & Johnson's MobiCom'00
// study) distinguishes two cache organizations:
//   * PATH caches — a set of complete source routes, each starting at the
//     caching node (what the CMU ns-2 DSR and this paper use); and
//   * LINK caches — individual links assembled into a graph, with routes
//     found by shortest-path search.
// Both are implemented here behind one interface so every caching technique
// (expiry, wider errors, negative caches) composes with either structure;
// bench/ablation_knobs compares them.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/time.h"
#include "src/telemetry/trace.h"

namespace manet::core {

/// A cache lookup result: the route plus the provenance of the cache entry
/// it came from. For path caches this is the stored path's birth record; for
/// link caches — where a route composes links learned at different times —
/// it is the provenance of the *oldest* constituent link, i.e. the entry
/// most likely to be stale and therefore the one a later failure should be
/// attributed to.
struct RouteLookup {
  std::vector<net::NodeId> hops;
  net::RouteProvenance prov{};
};

class RouteCacheBase {
 public:
  /// Predicate over links; lookups must not return a route using a
  /// rejected link (negative-cache mutual exclusion).
  using LinkFilter = std::function<bool(net::LinkId)>;

  virtual ~RouteCacheBase() = default;

  /// Learn a route (hops.front() must be the owning node, length >= 2,
  /// loop-free). Returns true if any information was stored/refreshed.
  /// `origin` names the protocol event that taught us the route; when a new
  /// entry is actually stored (and origin != kNone) the cache mints a
  /// RouteProvenance for it, so later lookups, stale uses and drops can be
  /// joined back to this insertion. Re-learning an existing entry keeps its
  /// original provenance (matching the first-entered addedAt semantics).
  virtual bool insert(std::span<const net::NodeId> hops, sim::Time now,
                      net::RouteOrigin origin = net::RouteOrigin::kNone) = 0;

  /// Best-known route from the owner to `dest` with the provenance of the
  /// entry that produced it, or nullopt.
  virtual std::optional<RouteLookup> lookup(
      net::NodeId dest, const LinkFilter& acceptLink = {}) const = 0;

  /// Best-known route from the owner to `dest`, or nullopt. Convenience
  /// wrapper over lookup() for callers that don't need provenance.
  std::optional<std::vector<net::NodeId>> findRoute(
      net::NodeId dest, const LinkFilter& acceptLink = {}) const {
    auto l = lookup(dest, acceptLink);
    if (!l) return std::nullopt;
    return std::move(l->hops);
  }

  /// True if the directed link is part of any cached information.
  virtual bool containsLink(net::LinkId link) const = 0;

  /// Remove a broken link. Returns the addedAt times of the affected
  /// cached routes/links — route-lifetime samples for the adaptive timeout.
  virtual std::vector<sim::Time> removeLink(net::LinkId link,
                                            sim::Time now) = 0;

  /// Refresh last-used stamps for every link of `route` (timer-based
  /// expiry bookkeeping).
  virtual void markLinksUsed(std::span<const net::NodeId> route,
                             sim::Time now) = 0;

  /// Timer-based expiry: drop link state unused since `cutoff`. Returns
  /// the number of links pruned.
  virtual std::size_t expireUnusedSince(sim::Time cutoff) = 0;

  virtual void clear() = 0;
  /// Number of stored entries (paths or links, structure-dependent).
  virtual std::size_t size() const = 0;

  /// Visit every cached route: path caches yield stored paths, link caches
  /// yield individual links as two-node routes. Used by the telemetry
  /// sampler (invalid-entry fraction via the link oracle) and inspectors.
  using RouteVisitor = std::function<void(std::span<const net::NodeId>)>;
  virtual void forEachRoute(const RouteVisitor& visit) const = 0;

  /// Observability: emit evict/expire records through `tracer` (may be
  /// null). `owner` stamps the records' node id.
  void bindTracer(telemetry::Tracer* tracer, net::NodeId owner) {
    tracer_ = tracer;
    traceOwner_ = owner;
  }

 protected:
  /// Emit a cache-scoped trace record if tracing is live.
  void traceCacheEvent(telemetry::TraceEvent event, std::int64_t detail) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    telemetry::TraceRecord r;
    r.at = tracer_->now();
    r.event = event;
    r.node = traceOwner_;
    r.detail = detail;
    tracer_->emit(r);
  }

  /// Emit a kCacheInsert record carrying the new entry's provenance.
  /// `detail` is the number of entries the insertion created.
  void traceCacheInsert(const net::RouteProvenance& prov,
                        std::int64_t detail) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    telemetry::TraceRecord r;
    r.at = tracer_->now();
    r.event = telemetry::TraceEvent::kCacheInsert;
    r.node = traceOwner_;
    r.detail = detail;
    r.prov = prov;
    tracer_->emit(r);
  }

  telemetry::Tracer* tracer_ = nullptr;
  net::NodeId traceOwner_ = 0;
};

enum class CacheStructure { kPath, kLink };

const char* toString(CacheStructure s);

}  // namespace manet::core
