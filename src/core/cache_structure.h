// Abstract route-cache structure.
//
// The paper (footnote 1, and the contrast with Hu & Johnson's MobiCom'00
// study) distinguishes two cache organizations:
//   * PATH caches — a set of complete source routes, each starting at the
//     caching node (what the CMU ns-2 DSR and this paper use); and
//   * LINK caches — individual links assembled into a graph, with routes
//     found by shortest-path search.
// Both are implemented here behind one interface so every caching technique
// (expiry, wider errors, negative caches) composes with either structure;
// bench/ablation_knobs compares them.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/net/packet.h"
#include "src/sim/time.h"
#include "src/telemetry/trace.h"

namespace manet::core {

class RouteCacheBase {
 public:
  /// Predicate over links; findRoute must not return a route using a
  /// rejected link (negative-cache mutual exclusion).
  using LinkFilter = std::function<bool(net::LinkId)>;

  virtual ~RouteCacheBase() = default;

  /// Learn a route (hops.front() must be the owning node, length >= 2,
  /// loop-free). Returns true if any information was stored/refreshed.
  virtual bool insert(std::span<const net::NodeId> hops, sim::Time now) = 0;

  /// Best-known route from the owner to `dest`, or nullopt.
  virtual std::optional<std::vector<net::NodeId>> findRoute(
      net::NodeId dest, const LinkFilter& acceptLink = {}) const = 0;

  /// True if the directed link is part of any cached information.
  virtual bool containsLink(net::LinkId link) const = 0;

  /// Remove a broken link. Returns the addedAt times of the affected
  /// cached routes/links — route-lifetime samples for the adaptive timeout.
  virtual std::vector<sim::Time> removeLink(net::LinkId link,
                                            sim::Time now) = 0;

  /// Refresh last-used stamps for every link of `route` (timer-based
  /// expiry bookkeeping).
  virtual void markLinksUsed(std::span<const net::NodeId> route,
                             sim::Time now) = 0;

  /// Timer-based expiry: drop link state unused since `cutoff`. Returns
  /// the number of links pruned.
  virtual std::size_t expireUnusedSince(sim::Time cutoff) = 0;

  virtual void clear() = 0;
  /// Number of stored entries (paths or links, structure-dependent).
  virtual std::size_t size() const = 0;

  /// Visit every cached route: path caches yield stored paths, link caches
  /// yield individual links as two-node routes. Used by the telemetry
  /// sampler (invalid-entry fraction via the link oracle) and inspectors.
  using RouteVisitor = std::function<void(std::span<const net::NodeId>)>;
  virtual void forEachRoute(const RouteVisitor& visit) const = 0;

  /// Observability: emit evict/expire records through `tracer` (may be
  /// null). `owner` stamps the records' node id.
  void bindTracer(telemetry::Tracer* tracer, net::NodeId owner) {
    tracer_ = tracer;
    traceOwner_ = owner;
  }

 protected:
  /// Emit a cache-scoped trace record if tracing is live.
  void traceCacheEvent(telemetry::TraceEvent event, std::int64_t detail) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    telemetry::TraceRecord r;
    r.at = tracer_->now();
    r.event = event;
    r.node = traceOwner_;
    r.detail = detail;
    tracer_->emit(r);
  }

  telemetry::Tracer* tracer_ = nullptr;
  net::NodeId traceOwner_ = 0;
};

enum class CacheStructure { kPath, kLink };

const char* toString(CacheStructure s);

}  // namespace manet::core
