// DSR configuration: standard optimizations plus the paper's three caching
// techniques, and the named protocol variants the evaluation compares.
#pragma once

#include <cstddef>
#include <string>

#include "src/core/cache_structure.h"
#include "src/sim/time.h"

namespace manet::core {

enum class ExpiryMode { kNone, kStatic, kAdaptive };

struct DsrConfig {
  // ---- standard DSR optimizations (all on in the paper's Base DSR) ----
  bool replyFromCache = true;
  bool salvaging = true;
  int maxSalvageCount = 4;
  bool gratuitousRepair = true;
  bool promiscuousListening = true;  // snoop routes from overheard packets
  bool gratuitousReplies = true;     // automatic route shortening
  bool nonPropagatingRequests = true;

  // ---- technique 1: wider error notification ----
  bool widerErrorNotification = false;

  // ---- technique 2: timer-based route expiry ----
  ExpiryMode expiry = ExpiryMode::kNone;
  sim::Time staticTimeout = sim::Time::seconds(10);
  /// The paper's alpha is unreadable in the scanned text; its stated
  /// calibration target is that adaptive selection should track the optimal
  /// static timeout. alpha = 2 puts the adaptive T right at our substrate's
  /// static optimum (~2 s at pause 0); bench/ablation_knobs sweeps it.
  double adaptiveAlpha = 2.0;
  sim::Time adaptiveMinTimeout = sim::Time::seconds(1);
  sim::Time expiryCheckPeriod = sim::Time::millis(500);  // paper: 0.5 s
  /// If true, originating a packet over a route also refreshes its links'
  /// last-used stamps. The paper's semantics ("seen in a unicast packet
  /// being forwarded by the node") excludes origination — which is what
  /// makes very small timeouts counter-productive (Fig. 1). Ablation knob.
  bool expiryCountsOrigination = false;

  // ---- technique 3: negative caches ----
  bool negativeCache = false;
  std::size_t negCacheCapacity = 64;          // see DESIGN.md
  sim::Time negCacheTtl = sim::Time::seconds(10);  // paper: Nt = 10 s

  // ---- cache and buffering model ----
  /// Path cache capacity. The paper's premise ("stale cache entries will
  /// stay forever") implies effectively-unbounded caches; 128 paths gives
  /// multi-minute residence at our insertion rates while bounding memory.
  std::size_t routeCacheCapacity = 128;
  /// Cache organization: the paper's path cache, or the Hu & Johnson style
  /// graph link cache (compared in bench/ablation_knobs).
  CacheStructure cacheStructure = CacheStructure::kPath;

  // ---- extension (the paper's future work): route freshness tagging ----
  /// Targets stamp replies with a per-target sequence number; nodes track
  /// the freshest stamp seen per destination and refuse to serve or accept
  /// reply routes older than it.
  bool freshnessTagging = false;
  std::size_t sendBufferCapacity = 64;              // paper: 64 packets
  sim::Time sendBufferTimeout = sim::Time::seconds(30);  // paper: 30 s

  // ---- route discovery pacing ----
  sim::Time nonPropRequestTimeout = sim::Time::millis(30);
  sim::Time requestBackoffInitial = sim::Time::millis(500);
  sim::Time requestBackoffMax = sim::Time::seconds(10);
  std::uint8_t maxRequestTtl = 64;
  /// Per-hop random delay before rebroadcasting a flooded request, breaking
  /// the synchronization of the broadcast storm.
  sim::Time broadcastJitterMax = sim::Time::millis(10);
};

/// The protocol variants compared in the paper's evaluation (Figs. 2-4).
enum class Variant {
  kBase,           // DSR with standard optimizations
  kWiderError,     // + wider error notification
  kStaticExpiry,   // + timer-based expiry, fixed timeout
  kAdaptiveExpiry, // + timer-based expiry, adaptive timeout
  kNegCache,       // + negative caches
  kAll,            // + all three techniques ("ALL" in the plots)
};

const char* toString(Variant v);

/// Build the configuration for a named variant. `staticTimeout` only
/// applies to kStaticExpiry.
DsrConfig makeVariantConfig(Variant v,
                            sim::Time staticTimeout = sim::Time::seconds(10));

/// Fail-fast range checks: throws std::invalid_argument with an actionable
/// message on the first out-of-range knob (a zero-capacity cache or a
/// negative timeout would otherwise misbehave silently mid-run).
void validate(const DsrConfig& cfg);

}  // namespace manet::core
