// The Dynamic Source Routing agent: one per node.
//
// Implements the full DSR protocol of Johnson & Maltz with the four standard
// optimizations the paper's Base DSR uses (reply-from-cache, salvaging,
// gratuitous route repair, promiscuous listening with gratuitous replies,
// non-propagating route requests), plus the paper's three cache-correctness
// techniques:
//
//   1. wider error notification   (broadcast RERRs, selective rebroadcast)
//   2. timer-based route expiry   (static or adaptive timeout)
//   3. negative caches            (broken-link cache, mutual exclusion)
//
// The agent sits directly on the MAC: it receives packets addressed to the
// node, overhears everything else through the promiscuous tap, and learns of
// broken links through the MAC's sendFailed feedback.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <memory>

#include "src/core/adaptive_timeout.h"
#include "src/core/cache_structure.h"
#include "src/core/dsr_config.h"
#include "src/core/negative_cache.h"
#include "src/core/send_buffer.h"
#include "src/mac/dcf_mac.h"
#include "src/metrics/metrics.h"
#include "src/metrics/oracle.h"
#include "src/net/packet.h"
#include "src/net/routing_agent.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace manet::core {

class DsrAgent final : public net::RoutingAgent {
 public:
  /// `oracle` is optional and measurement-only (cache-correctness metrics).
  /// `tracer` is optional; when enabled the agent emits packet-lifecycle,
  /// cache and route-error trace records (see src/telemetry/trace.h).
  DsrAgent(net::NodeId self, mac::DcfMac& mac, sim::Scheduler& sched,
           sim::Rng rng, const DsrConfig& cfg, metrics::Metrics* metrics,
           const metrics::LinkOracle* oracle,
           telemetry::Tracer* tracer = nullptr);

  DsrAgent(const DsrAgent&) = delete;
  DsrAgent& operator=(const DsrAgent&) = delete;

  /// Application entry point: send `payloadBytes` of data to `dst`.
  void sendData(net::NodeId dst, std::uint32_t payloadBytes,
                std::uint32_t flowId, std::uint64_t seqInFlow) override;

  /// Send a fully-formed packet (transport extension: segments carrying a
  /// TransportHdr). kind must be kData; src must be this node.
  void sendPacket(std::shared_ptr<net::Packet> p);

  /// Register an upcall invoked for every data packet delivered to this
  /// node (after metrics accounting). Multiple handlers are all invoked.
  using DeliveryHandler = std::function<void(const net::Packet&)>;
  void addDeliveryHandler(DeliveryHandler h) {
    deliveryHandlers_.push_back(std::move(h));
  }

  net::NodeId id() const override { return self_; }
  const DsrConfig& config() const { return cfg_; }

  /// Preload a route (first hop must be this node). Subject to the same
  /// admission rules as learned routes (loop-free, negative-cache mutual
  /// exclusion). Useful for static deployments, tests and examples.
  void seedRoute(std::span<const net::NodeId> hops) {
    cacheRoute(hops, net::RouteOrigin::kSeeded);
  }

  /// Drop all cached route state — route cache, negative cache and the
  /// forwarded-links memory used by wider error notification. Called by the
  /// fault injector when a crashed node recovers (a reboot loses soft
  /// state); pending discoveries and buffered packets survive, as a real
  /// send buffer in kernel memory would not, but re-buffering them would
  /// double-count originations.
  void wipeCaches();

  // --- introspection (tests, examples, benches) ---
  const RouteCacheBase& routeCache() const { return *cache_; }
  NegativeCache& negativeCache() { return neg_; }
  const AdaptiveTimeout& adaptiveTimeout() const { return adaptive_; }
  const SendBuffer& sendBuffer() const { return sendBuf_; }
  /// The expiry timeout currently in force (static value, adaptive estimate,
  /// or Time::max() when expiry is off).
  sim::Time currentExpiryTimeout() const;

 private:
  struct DiscoveryState {
    bool active = false;
    std::uint32_t nextId = 1;
    sim::Time backoff;
    sim::EventId pendingEvent = sim::kInvalidEvent;
    /// Uid of the buffered data packet that triggered this discovery; every
    /// RREQ the discovery emits carries it as causeUid, chaining the flood
    /// (and its replies) back to the packet that needed the route.
    std::uint64_t causeUid = 0;
  };

  // MAC callbacks.
  void onReceive(net::PacketPtr p, net::NodeId from);
  void onTap(const mac::Frame& f);
  void onSendFailed(net::PacketPtr p, net::NodeId nextHop);

  // Per-kind handlers.
  void handleData(const net::PacketPtr& p);
  void handleRequest(const net::PacketPtr& p, net::NodeId from);
  void handleReply(const net::PacketPtr& p);
  void handleErrorUnicast(const net::PacketPtr& p);
  void handleErrorBroadcast(const net::PacketPtr& p);

  // Route discovery. `causeUid` is the uid of the data packet that needs
  // the route (0 when unknown, e.g. buffer-sweep restarts).
  void startDiscovery(net::NodeId target, std::uint64_t causeUid = 0);
  void sendRequest(net::NodeId target, std::uint8_t ttl);
  void onDiscoveryTimeout(net::NodeId target);
  void endDiscovery(net::NodeId target);

  // Replies. `causeUid` names the packet that provoked the reply (the
  // request being answered, or the tapped data packet for gratuitous
  // replies); `reportedProv` is the cache entry a cached reply serves from.
  void sendReply(std::vector<net::NodeId> fullRoute,
                 std::vector<net::NodeId> backPath, bool fromCache,
                 std::uint32_t freshness = 0, std::uint64_t causeUid = 0,
                 net::RouteProvenance reportedProv = {});

  // Errors / broken links. `origin` names the evidence that condemned the
  // link (MAC feedback vs. the flavor of route error that reported it) and
  // becomes the negative-cache entry's provenance origin.
  void noteBrokenLink(net::LinkId link, net::RouteOrigin origin);
  void originateError(net::LinkId link, const net::Packet* failedPacket);

  // Cache plumbing.
  /// Insert a route into the cache, honoring negative-cache mutual
  /// exclusion (the route is truncated at the first negatively-cached
  /// link). `hops` must start at this node; `origin` names how the route
  /// was learned and seeds the new entry's provenance.
  void cacheRoute(std::span<const net::NodeId> hops, net::RouteOrigin origin);
  /// Cache lookup that refuses routes crossing negatively-cached links.
  /// The result carries the serving entry's provenance.
  std::optional<RouteLookup> lookupRoute(net::NodeId dest);
  /// Count a cache hit and its oracle-checked validity, attributed to the
  /// serving entry's origin.
  void recordCacheHit(const RouteLookup& hit);

  // Tracing helpers (no-ops when no sink is attached).
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }
  void tracePacketEvent(
      telemetry::TraceEvent event, const net::Packet& p,
      telemetry::DropReason reason = telemetry::DropReason::kNone,
      std::int64_t detail = 0);
  /// Route-error records carry the broken link's endpoints in src/dst.
  /// `p` (the RERR packet, when available) contributes uid, causal link and
  /// the provenance of the entry whose failure the error reports.
  void traceRerr(telemetry::TraceEvent event, net::LinkId broken,
                 std::int64_t detail, const net::Packet* p = nullptr);

  // Transmission helpers.
  void transmitAlongRoute(std::shared_ptr<net::Packet> p);
  void forwardData(const net::PacketPtr& p);
  bool trySalvage(const net::Packet& failed, net::LinkId broken);
  void drainSendBuffer();

  // Periodic work.
  void periodicExpiry();
  void periodicBufferSweep();

  // Request duplicate table.
  bool requestSeen(net::NodeId origin, std::uint32_t id);
  void rememberRequest(net::NodeId origin, std::uint32_t id);
  bool errorSeen(net::NodeId detector, std::uint32_t id);

  net::NodeId self_;
  mac::DcfMac& mac_;
  sim::Scheduler& sched_;
  sim::Rng rng_;
  DsrConfig cfg_;
  metrics::Metrics* metrics_;
  const metrics::LinkOracle* oracle_;
  telemetry::Tracer* tracer_;

  std::unique_ptr<RouteCacheBase> cache_;
  NegativeCache neg_;
  AdaptiveTimeout adaptive_;
  SendBuffer sendBuf_;

  /// Ordered: the periodic buffer sweep iterates this to restart stalled
  /// discoveries, and the resulting RREQ emission order is
  /// simulation-visible. Point-lookup-only sets below stay unordered.
  std::map<net::NodeId, DiscoveryState> discovery_;
  std::unordered_set<std::uint64_t> seenRequests_;
  std::deque<std::uint64_t> seenRequestsFifo_;
  std::unordered_set<std::uint64_t> seenErrors_;
  std::deque<std::uint64_t> seenErrorsFifo_;
  /// Links this node recently used while forwarding packets — the wider
  /// error rebroadcast predicate ("that route was used before in the
  /// packets forwarded by the node").
  std::unordered_map<net::LinkId, sim::Time, net::LinkIdHash> forwardedLinks_;
  /// Gratuitous-reply rate limiting: (routeSource -> last grat reply time).
  std::unordered_map<net::NodeId, sim::Time> lastGratReply_;
  /// Most recent route error this node originated or received as a source,
  /// piggybacked on the next route request (gratuitous route repair).
  std::optional<net::LinkId> pendingRepairError_;
  std::uint32_t errorCounter_ = 0;
  std::vector<DeliveryHandler> deliveryHandlers_;

  // Freshness-tagging extension state.
  std::uint32_t ownFreshness_ = 0;  // stamp for replies we originate as target
  /// Freshest reply stamp seen per destination.
  std::unordered_map<net::NodeId, std::uint32_t> freshestSeen_;
};

}  // namespace manet::core
