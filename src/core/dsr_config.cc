#include "src/core/dsr_config.h"

#include <stdexcept>
#include <string>

namespace manet::core {

const char* toString(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "DSR";
    case Variant::kWiderError:
      return "WiderError";
    case Variant::kStaticExpiry:
      return "StaticExpiry";
    case Variant::kAdaptiveExpiry:
      return "AdaptiveExpiry";
    case Variant::kNegCache:
      return "NegCache";
    case Variant::kAll:
      return "ALL";
  }
  return "?";
}

DsrConfig makeVariantConfig(Variant v, sim::Time staticTimeout) {
  DsrConfig cfg;  // defaults == Base DSR
  switch (v) {
    case Variant::kBase:
      break;
    case Variant::kWiderError:
      cfg.widerErrorNotification = true;
      break;
    case Variant::kStaticExpiry:
      cfg.expiry = ExpiryMode::kStatic;
      cfg.staticTimeout = staticTimeout;
      break;
    case Variant::kAdaptiveExpiry:
      cfg.expiry = ExpiryMode::kAdaptive;
      break;
    case Variant::kNegCache:
      cfg.negativeCache = true;
      break;
    case Variant::kAll:
      cfg.widerErrorNotification = true;
      cfg.expiry = ExpiryMode::kAdaptive;
      cfg.negativeCache = true;
      break;
  }
  return cfg;
}

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("dsr config: " + what);
}

}  // namespace

void validate(const DsrConfig& cfg) {
  if (cfg.maxSalvageCount < 0) {
    fail("maxSalvageCount must be >= 0, got " +
         std::to_string(cfg.maxSalvageCount));
  }
  if (cfg.expiry == ExpiryMode::kStatic &&
      cfg.staticTimeout <= sim::Time::zero()) {
    fail("staticTimeout must be > 0 when static expiry is on");
  }
  if (cfg.expiry == ExpiryMode::kAdaptive) {
    if (cfg.adaptiveAlpha <= 0.0) {
      fail("adaptiveAlpha must be > 0, got " +
           std::to_string(cfg.adaptiveAlpha));
    }
    if (cfg.adaptiveMinTimeout <= sim::Time::zero()) {
      fail("adaptiveMinTimeout must be > 0");
    }
  }
  if (cfg.expiry != ExpiryMode::kNone &&
      cfg.expiryCheckPeriod <= sim::Time::zero()) {
    fail("expiryCheckPeriod must be > 0 when expiry is on");
  }
  if (cfg.negativeCache) {
    if (cfg.negCacheCapacity == 0) {
      fail("negCacheCapacity must be > 0 when the negative cache is on");
    }
    if (cfg.negCacheTtl <= sim::Time::zero()) {
      fail("negCacheTtl must be > 0 when the negative cache is on");
    }
  }
  if (cfg.routeCacheCapacity == 0) fail("routeCacheCapacity must be > 0");
  if (cfg.sendBufferCapacity == 0) fail("sendBufferCapacity must be > 0");
  if (cfg.sendBufferTimeout <= sim::Time::zero()) {
    fail("sendBufferTimeout must be > 0");
  }
  if (cfg.maxRequestTtl == 0) fail("maxRequestTtl must be > 0");
  if (cfg.nonPropagatingRequests &&
      cfg.nonPropRequestTimeout <= sim::Time::zero()) {
    fail("nonPropRequestTimeout must be > 0");
  }
  if (cfg.requestBackoffInitial <= sim::Time::zero()) {
    fail("requestBackoffInitial must be > 0");
  }
  if (cfg.requestBackoffMax < cfg.requestBackoffInitial) {
    fail("requestBackoffMax must be >= requestBackoffInitial");
  }
}

}  // namespace manet::core
