#include "src/core/dsr_config.h"

namespace manet::core {

const char* toString(Variant v) {
  switch (v) {
    case Variant::kBase:
      return "DSR";
    case Variant::kWiderError:
      return "WiderError";
    case Variant::kStaticExpiry:
      return "StaticExpiry";
    case Variant::kAdaptiveExpiry:
      return "AdaptiveExpiry";
    case Variant::kNegCache:
      return "NegCache";
    case Variant::kAll:
      return "ALL";
  }
  return "?";
}

DsrConfig makeVariantConfig(Variant v, sim::Time staticTimeout) {
  DsrConfig cfg;  // defaults == Base DSR
  switch (v) {
    case Variant::kBase:
      break;
    case Variant::kWiderError:
      cfg.widerErrorNotification = true;
      break;
    case Variant::kStaticExpiry:
      cfg.expiry = ExpiryMode::kStatic;
      cfg.staticTimeout = staticTimeout;
      break;
    case Variant::kAdaptiveExpiry:
      cfg.expiry = ExpiryMode::kAdaptive;
      break;
    case Variant::kNegCache:
      cfg.negativeCache = true;
      break;
    case Variant::kAll:
      cfg.widerErrorNotification = true;
      cfg.expiry = ExpiryMode::kAdaptive;
      cfg.negativeCache = true;
      break;
  }
  return cfg;
}

}  // namespace manet::core
