// Negative cache: recently-broken links (the paper's third technique).
//
// Caching the *absence* of a link prevents the "quick pollution" problem:
// after a route error erases a stale route, in-flight packets upstream still
// carry it and would re-insert it on the next forward or snoop. While a link
// is negatively cached (Nt = 10 s in the paper):
//   * packets whose source route uses the link are dropped and a route error
//     is generated, and
//   * the link is never admitted into the route cache —
// route cache and negative cache stay mutually exclusive.
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>

#include "src/net/packet.h"
#include "src/sim/time.h"
#include "src/telemetry/trace.h"

namespace manet::core {

class NegativeCache {
 public:
  /// `capacity` entries with FIFO replacement; entries live for `ttl`.
  NegativeCache(std::size_t capacity, sim::Time ttl);

  /// Record a broken link observed at `now` (via link-layer feedback or a
  /// route error). Re-inserting refreshes the expiry and FIFO position but
  /// keeps the entry's original provenance (the first quarantine decision).
  /// `origin` names the evidence source (kMacFeedback, kRerrUnicast, ...);
  /// new entries with origin != kNone mint a provenance record, so drops
  /// caused by the quarantine attribute back to what created it.
  void insert(net::LinkId link, sim::Time now,
              net::RouteOrigin origin = net::RouteOrigin::kNone);

  /// True if the link is negatively cached and not yet expired.
  bool contains(net::LinkId link, sim::Time now);

  /// Read-only variant of contains(): no expiry sweep, no trace records.
  /// Used by the invariant checker so observing does not perturb state.
  bool peek(net::LinkId link, sim::Time now) const {
    const auto it = expiry_.find(link);
    return it != expiry_.end() && it->second.expiresAt > now;
  }

  /// Provenance of a live quarantine entry (read-only; no expiry sweep).
  /// id == 0 if the link is not cached, already expired, or was inserted
  /// without an origin.
  net::RouteProvenance provenance(net::LinkId link, sim::Time now) const {
    const auto it = expiry_.find(link);
    if (it == expiry_.end() || it->second.expiresAt <= now) return {};
    return it->second.prov;
  }

  /// Positive evidence that the link works (e.g. we just heard the
  /// neighbor transmit): lift the quarantine early. Congestion can make
  /// the MAC report breaks for links that are physically fine; without
  /// this, such false positives block the only good route for a full Nt.
  void erase(net::LinkId link);

  /// Drop everything (node crash recovery wipes soft state).
  void clear() {
    expiry_.clear();
    fifo_.clear();
  }

  std::size_t size(sim::Time now);
  /// Stored entries including not-yet-swept expired ones: the memory
  /// footprint, observable without perturbing expiry state (profiler
  /// occupancy gauge — must not mutate, unlike size()).
  std::size_t rawSize() const { return expiry_.size(); }
  std::size_t capacity() const { return capacity_; }
  sim::Time ttl() const { return ttl_; }

  /// Observability: emit insert/expire records through `tracer` (may be
  /// null). `owner` stamps the records' node id.
  void bindTracer(telemetry::Tracer* tracer, net::NodeId owner) {
    tracer_ = tracer;
    traceOwner_ = owner;
  }

 private:
  struct Entry {
    sim::Time expiresAt;
    net::RouteProvenance prov{};  // birth record (id 0 = untracked insert)
  };

  void expire(sim::Time now);
  void traceNegEvent(telemetry::TraceEvent event, net::LinkId link,
                     const net::RouteProvenance& prov = {});

  telemetry::Tracer* tracer_ = nullptr;
  net::NodeId traceOwner_ = 0;
  std::size_t capacity_;
  sim::Time ttl_;
  std::unordered_map<net::LinkId, Entry, net::LinkIdHash> expiry_;
  std::deque<net::LinkId> fifo_;
};

}  // namespace manet::core
