#include "src/core/send_buffer.h"

#include <algorithm>

namespace manet::core {

std::vector<SendBuffer::Entry> SendBuffer::push(net::PacketPtr pkt,
                                                net::NodeId dest,
                                                sim::Time now) {
  std::vector<Entry> evicted;
  while (entries_.size() >= capacity_) {
    evicted.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  entries_.push_back(Entry{std::move(pkt), dest, now});
  return evicted;
}

std::vector<SendBuffer::Entry> SendBuffer::takeForDest(net::NodeId dest) {
  std::vector<Entry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->dest == dest) {
      out.push_back(std::move(*it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<SendBuffer::Entry> SendBuffer::expire(sim::Time now) {
  std::vector<Entry> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (now - it->enqueuedAt > timeout_) {
      out.push_back(std::move(*it));
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::vector<net::NodeId> SendBuffer::destinations() const {
  std::vector<net::NodeId> out;
  for (const Entry& e : entries_) {
    if (std::find(out.begin(), out.end(), e.dest) == out.end()) {
      out.push_back(e.dest);
    }
  }
  return out;
}

bool SendBuffer::hasPacketsFor(net::NodeId dest) const {
  return std::any_of(entries_.begin(), entries_.end(),
                     [dest](const Entry& e) { return e.dest == dest; });
}

}  // namespace manet::core
