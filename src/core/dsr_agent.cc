#include "src/core/dsr_agent.h"

#include <algorithm>
#include <cassert>

#include "src/core/cache_factory.h"
#include "src/util/logging.h"

namespace manet::core {
namespace {

constexpr std::size_t kSeenTableCapacity = 4096;
/// Minimum spacing between gratuitous (route-shortening) replies to the
/// same route source.
constexpr sim::Time kGratReplyHoldoff = sim::Time::seconds(1);

std::uint64_t seenKey(net::NodeId a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

std::vector<net::NodeId> reversed(std::span<const net::NodeId> hops) {
  return {hops.rbegin(), hops.rend()};
}

}  // namespace

DsrAgent::DsrAgent(net::NodeId self, mac::DcfMac& mac, sim::Scheduler& sched,
                   sim::Rng rng, const DsrConfig& cfg,
                   metrics::Metrics* metrics,
                   const metrics::LinkOracle* oracle,
                   telemetry::Tracer* tracer)
    : self_(self),
      mac_(mac),
      sched_(sched),
      rng_(std::move(rng)),
      cfg_(cfg),
      metrics_(metrics),
      oracle_(oracle),
      tracer_(tracer),
      cache_(makeRouteCache(cfg, self)),
      neg_(cfg.negCacheCapacity, cfg.negCacheTtl),
      adaptive_(cfg.adaptiveAlpha, cfg.adaptiveMinTimeout),
      sendBuf_(cfg.sendBufferCapacity, cfg.sendBufferTimeout) {
  cache_->bindTracer(tracer_, self_);
  neg_.bindTracer(tracer_, self_);
  mac_.setHandlers(mac::DcfMac::Handlers{
      .receive = [this](net::PacketPtr p,
                        net::NodeId from) { onReceive(std::move(p), from); },
      .promiscuousTap = [this](const mac::Frame& f) { onTap(f); },
      .sendFailed =
          [this](net::PacketPtr p, net::NodeId nextHop) {
            onSendFailed(std::move(p), nextHop);
          },
      .sendOk = nullptr,
  });
  if (cfg_.expiry != ExpiryMode::kNone) {
    sched_.scheduleAfter(
        cfg_.expiryCheckPeriod, [this] { periodicExpiry(); },
        prof::Category::kRouting);
  }
  sched_.scheduleAfter(
      sim::Time::seconds(1), [this] { periodicBufferSweep(); },
      prof::Category::kRouting);
}

void DsrAgent::wipeCaches() {
  cache_->clear();
  neg_.clear();
  forwardedLinks_.clear();
}

sim::Time DsrAgent::currentExpiryTimeout() const {
  switch (cfg_.expiry) {
    case ExpiryMode::kNone:
      return sim::Time::max();
    case ExpiryMode::kStatic:
      return cfg_.staticTimeout;
    case ExpiryMode::kAdaptive:
      return adaptive_.timeout(sched_.now());
  }
  return sim::Time::max();
}

// ---------------------------------------------------------------- sending

void DsrAgent::sendData(net::NodeId dst, std::uint32_t payloadBytes,
                        std::uint32_t flowId, std::uint64_t seqInFlow) {
  // Called from CBR ticks (and tests); charge origination to routing.
  prof::Scope profScope(sched_.profiler(), prof::Category::kRouting, self_);
  if (metrics_) ++metrics_->dataOriginated;
  // manet-lint: allow(causal-id): root origination — new application data
  // starts a causal chain, it has no parent packet
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kData;
  p->src = self_;
  p->dst = dst;
  p->payloadBytes = payloadBytes;
  p->originatedAt = sched_.now();
  p->flowId = flowId;
  p->seqInFlow = seqInFlow;
  tracePacketEvent(telemetry::TraceEvent::kPktOriginate, *p);

  auto hit = lookupRoute(dst);
  if (hit) {
    recordCacheHit(*hit);
    p->routeProv = hit->prov;
    p->route = net::SourceRoute{std::move(hit->hops), 0};
    transmitAlongRoute(std::move(p));
    return;
  }
  if (tracing()) {
    telemetry::TraceRecord miss;
    miss.at = sched_.now();
    miss.event = telemetry::TraceEvent::kCacheMiss;
    miss.node = self_;
    miss.src = self_;
    miss.dst = dst;
    tracer_->emit(miss);
  }
  const std::uint64_t triggerUid = p->uid;
  auto evicted = sendBuf_.push(std::move(p), dst, sched_.now());
  if (prof::Profiler* pr = sched_.profiler()) {
    pr->notePeak(prof::Gauge::kSendBufOccupancy, sendBuf_.size());
  }
  if (metrics_) metrics_->dropSendBufferOverflow += evicted.size();
  for (const auto& e : evicted) {
    if (e.packet) {
      tracePacketEvent(telemetry::TraceEvent::kPktDrop, *e.packet,
                       telemetry::DropReason::kSendBufferOverflow);
    }
  }
  startDiscovery(dst, triggerUid);
}

void DsrAgent::sendPacket(std::shared_ptr<net::Packet> p) {
  assert(p->kind == net::PacketKind::kData && p->src == self_);
  if (metrics_) ++metrics_->dataOriginated;
  p->originatedAt = sched_.now();
  const net::NodeId dst = p->dst;
  tracePacketEvent(telemetry::TraceEvent::kPktOriginate, *p);
  auto hit = lookupRoute(dst);
  if (hit) {
    recordCacheHit(*hit);
    p->routeProv = hit->prov;
    p->route = net::SourceRoute{std::move(hit->hops), 0};
    transmitAlongRoute(std::move(p));
    return;
  }
  if (tracing()) {
    telemetry::TraceRecord miss;
    miss.at = sched_.now();
    miss.event = telemetry::TraceEvent::kCacheMiss;
    miss.node = self_;
    miss.src = self_;
    miss.dst = dst;
    tracer_->emit(miss);
  }
  const std::uint64_t triggerUid = p->uid;
  auto evicted = sendBuf_.push(std::move(p), dst, sched_.now());
  if (prof::Profiler* pr = sched_.profiler()) {
    pr->notePeak(prof::Gauge::kSendBufOccupancy, sendBuf_.size());
  }
  if (metrics_) metrics_->dropSendBufferOverflow += evicted.size();
  for (const auto& e : evicted) {
    if (e.packet) {
      tracePacketEvent(telemetry::TraceEvent::kPktDrop, *e.packet,
                       telemetry::DropReason::kSendBufferOverflow);
    }
  }
  startDiscovery(dst, triggerUid);
}

void DsrAgent::transmitAlongRoute(std::shared_ptr<net::Packet> p) {
  assert(p->route && !p->route->atDestination());
  assert(p->route->hops[p->route->cursor] == self_);
  // Timer-based expiry "use" semantics, per the paper: the timestamp is
  // refreshed when a route is seen in a unicast packet *forwarded by the
  // node* (cursor > 0). Origination does not count unless the config says
  // so — this is what makes tiny timeouts expensive (the source re-discovers
  // its own active route every T), reproducing the paper's Fig. 1 shape.
  if (p->route->cursor > 0 || cfg_.expiryCountsOrigination) {
    cache_->markLinksUsed(p->route->hops, sched_.now());
  }
  const net::NodeId nextHop = p->route->nextHop();
  auto sent = net::clone(*p);
  ++sent->route->cursor;  // cursor points at the receiver while in flight
  const bool priority = sent->kind != net::PacketKind::kData;
  mac_.send(std::move(sent), nextHop, priority);
}

// ---------------------------------------------------------------- receive

void DsrAgent::onReceive(net::PacketPtr p, net::NodeId from) {
  // Runs inside the receiver's MAC/PHY event; the scope charges DSR
  // processing to routing instead.
  prof::Scope profScope(sched_.profiler(), prof::Category::kRouting, self_);
  // Hearing a neighbor is positive evidence the link to it works: lift any
  // (possibly congestion-induced) quarantine.
  if (cfg_.negativeCache) neg_.erase(net::LinkId{self_, from});
  switch (p->kind) {
    case net::PacketKind::kData:
      handleData(p);
      break;
    case net::PacketKind::kRouteRequest:
      handleRequest(p, from);
      break;
    case net::PacketKind::kRouteReply:
      handleReply(p);
      break;
    case net::PacketKind::kRouteError:
      if (p->route) {
        handleErrorUnicast(p);
      } else {
        handleErrorBroadcast(p);
      }
      break;
  }
}

void DsrAgent::handleData(const net::PacketPtr& p) {
  assert(p->route);
  const auto& hops = p->route->hops;
  if (p->route->hops[p->route->cursor] != self_) return;  // stale delivery

  // Forwarding a unicast source-routed packet: refresh link usage stamps
  // (timer-based expiry) and remember the links for the wider-error
  // rebroadcast predicate.
  cache_->markLinksUsed(hops, sched_.now());
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    forwardedLinks_[net::LinkId{hops[i], hops[i + 1]}] = sched_.now();
  }

  if (p->route->atDestination()) {
    if (metrics_) {
      ++metrics_->dataDelivered;
      metrics_->bytesDelivered += p->payloadBytes;
      // manet-lint: allow(float-time): metrics-only delay sum; never read
      metrics_->delaySumSec += (sched_.now() - p->originatedAt).toSeconds();
    }
    tracePacketEvent(telemetry::TraceEvent::kPktDeliver, *p,
                     telemetry::DropReason::kNone,
                     (sched_.now() - p->originatedAt).ns() / 1000);
    // The destination also learns the (reversed) route back to the source.
    cacheRoute(reversed(hops), net::RouteOrigin::kDelivered);
    for (const DeliveryHandler& h : deliveryHandlers_) h(*p);
    return;
  }

  // A forwarding node caches the rest of the route it is relaying.
  cacheRoute(std::span<const net::NodeId>(hops).subspan(p->route->cursor),
             net::RouteOrigin::kForwarded);

  forwardData(p);
}

void DsrAgent::forwardData(const net::PacketPtr& p) {
  const auto& hops = p->route->hops;
  // Negative cache rule: never forward over a link known to be broken —
  // drop and report instead, so the stale route is purged at the source.
  if (cfg_.negativeCache) {
    for (std::size_t i = p->route->cursor; i + 1 < hops.size(); ++i) {
      const net::LinkId link{hops[i], hops[i + 1]};
      if (neg_.contains(link, sched_.now())) {
        if (metrics_) ++metrics_->dropNegativeCache;
        // detail carries the quarantine entry's provenance id: the drop has
        // two causes — the stale route entry (prov fields) and the negative
        // cache entry that intercepted it (detail).
        tracePacketEvent(
            telemetry::TraceEvent::kPktDrop, *p,
            telemetry::DropReason::kNegativeCache,
            static_cast<std::int64_t>(
                neg_.provenance(link, sched_.now()).id));
        originateError(link, p.get());
        return;
      }
    }
  }
  tracePacketEvent(telemetry::TraceEvent::kPktForward, *p);
  transmitAlongRoute(net::clone(*p));
}

// ---------------------------------------------------------- route requests

void DsrAgent::handleRequest(const net::PacketPtr& p, net::NodeId from) {
  (void)from;  // route record, not MAC sender, names the previous hop
  assert(p->rreq);
  const net::RouteRequestHdr& req = *p->rreq;
  if (req.origin == self_) return;

  // Gratuitous route repair: the origin piggybacked a recent route error.
  if (req.piggybackedError) {
    noteBrokenLink(*req.piggybackedError,
                   net::RouteOrigin::kPiggybackedRepair);
  }

  // Loop check: we are already on the accumulated path.
  if (std::find(req.path.begin(), req.path.end(), self_) != req.path.end()) {
    return;
  }

  // Learn the reverse route back to the origin (links are bidirectional
  // under 802.11's RTS/CTS/ACK handshake).
  {
    std::vector<net::NodeId> back;
    back.reserve(req.path.size() + 1);
    back.push_back(self_);
    back.insert(back.end(), req.path.rbegin(), req.path.rend());
    cacheRoute(back, net::RouteOrigin::kReverseRequest);
  }

  // The target answers every copy of the request (that is how the origin
  // learns multiple disjoint routes), and never propagates it.
  if (req.target == self_) {
    std::vector<net::NodeId> full = req.path;
    full.push_back(self_);
    if (metrics_) ++metrics_->targetRepliesGenerated;
    // Freshness tagging: the target certifies this reply as the newest
    // word on routes to itself.
    const std::uint32_t stamp =
        cfg_.freshnessTagging ? ++ownFreshness_ : 0;
    sendReply(full, reversed(full), /*fromCache=*/false, stamp,
              /*causeUid=*/p->uid);
    return;
  }

  if (requestSeen(req.origin, req.id)) return;
  rememberRequest(req.origin, req.id);

  // Reply from cache: quenches the flood at this node.
  if (cfg_.replyFromCache) {
    if (auto cached = lookupRoute(req.target)) {
      std::vector<net::NodeId> full = req.path;
      full.insert(full.end(), cached->hops.begin(), cached->hops.end());
      if (!net::routeHasDuplicates(full)) {
        recordCacheHit(*cached);
        if (metrics_) ++metrics_->cacheRepliesGenerated;
        std::vector<net::NodeId> back = req.path;
        back.push_back(self_);
        // A cached reply can only vouch for the freshness it learned.
        std::uint32_t stamp = 0;
        if (cfg_.freshnessTagging) {
          auto it = freshestSeen_.find(req.target);
          if (it != freshestSeen_.end()) stamp = it->second;
        }
        sendReply(std::move(full), reversed(back), /*fromCache=*/true,
                  stamp, /*causeUid=*/p->uid, cached->prov);
        return;
      }
    }
  }

  if (req.ttl <= 1) return;  // non-propagating request dies here

  // Rebroadcast with ourselves appended, after a small jitter that breaks
  // flood synchronization.
  auto fwd = net::clone(*p);
  fwd->rreq->path.push_back(self_);
  fwd->rreq->ttl = req.ttl - 1;
  const auto jitter = sim::Time::nanos(rng_.uniformInt(
      0, std::max<std::int64_t>(1, cfg_.broadcastJitterMax.ns())));
  sched_.scheduleAfter(
      jitter,
      [this, fwd = std::move(fwd)] {
        mac_.send(fwd, net::kBroadcast, /*priority=*/true);
      },
      prof::Category::kRouting);
}

void DsrAgent::sendReply(std::vector<net::NodeId> fullRoute,
                         std::vector<net::NodeId> backPath, bool fromCache,
                         std::uint32_t freshness, std::uint64_t causeUid,
                         net::RouteProvenance reportedProv) {
  assert(backPath.front() == self_);
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kRouteReply;
  p->src = self_;
  p->dst = backPath.back();
  p->originatedAt = sched_.now();
  p->causeUid = causeUid;
  // For cache-served replies, record which cache entry produced the
  // reported route — if it was stale, receivers' caches inherit the blame.
  p->routeProv = reportedProv;
  p->rrep = net::RouteReplyHdr{std::move(fullRoute), self_, fromCache,
                               freshness};
  if (backPath.size() == 1) {
    // Degenerate case: replying to ourselves (cannot happen in practice —
    // the origin never processes its own request).
    return;
  }
  p->route = net::SourceRoute{std::move(backPath), 0};
  transmitAlongRoute(std::move(p));
}

void DsrAgent::handleReply(const net::PacketPtr& p) {
  assert(p->rrep && p->route);
  if (p->route->hops[p->route->cursor] != self_) return;

  const auto& reported = p->rrep->route;

  // Freshness tagging: ignore reply routes that are provably older than
  // information we already hold about this destination.
  if (cfg_.freshnessTagging && !reported.empty()) {
    const net::NodeId target = reported.back();
    auto [it, inserted] =
        freshestSeen_.try_emplace(target, p->rrep->freshness);
    if (!inserted) {
      if (p->rrep->freshness < it->second) {
        if (metrics_) ++metrics_->staleRepliesIgnored;
        // Still forward the reply toward its requester (it may know even
        // less than we do), but learn nothing from it ourselves.
        if (!p->route->atDestination()) transmitAlongRoute(net::clone(*p));
        return;
      }
      it->second = p->rrep->freshness;
    }
  }

  if (p->route->atDestination()) {
    // We are the original requester: cache the route and measure its
    // quality (the paper's "good replies" metric).
    if (metrics_) {
      ++metrics_->repliesReceived;
      if (oracle_ == nullptr || oracle_->routeValid(reported, sched_.now())) {
        ++metrics_->goodRepliesReceived;
      }
    }
    if (!reported.empty() && reported.front() == self_) {
      // A reply generated by the target itself is fresher evidence than any
      // quarantined break (the request just traversed the network): lift
      // the quarantine on its links. Replies served from intermediate
      // caches stay subject to the negative cache — they are exactly the
      // potentially-stale information it exists to filter.
      if (cfg_.negativeCache && !p->rrep->fromCache) {
        for (std::size_t i = 0; i + 1 < reported.size(); ++i) {
          neg_.erase(net::LinkId{reported[i], reported[i + 1]});
        }
      }
      // Label what kind of reply taught us this route: served from an
      // intermediate cache, generated by the target itself, or a gratuitous
      // (route-shortening) reply from an overhearing node (replier is then
      // neither an intermediate cache nor the route's target).
      net::RouteOrigin origin = net::RouteOrigin::kTargetReply;
      if (p->rrep->fromCache) {
        origin = net::RouteOrigin::kCachedReply;
      } else if (p->rrep->replier != reported.back()) {
        origin = net::RouteOrigin::kGratuitous;
      }
      cacheRoute(reported, origin);
      endDiscovery(reported.back());
    }
    drainSendBuffer();
    return;
  }

  // Intermediate reply forwarder: learn the reported route's suffix that
  // starts at us, if any.
  auto it = std::find(reported.begin(), reported.end(), self_);
  if (it != reported.end()) {
    cacheRoute(std::span<const net::NodeId>(&*it,
                                            static_cast<std::size_t>(
                                                reported.end() - it)),
               net::RouteOrigin::kForwarded);
  }
  transmitAlongRoute(net::clone(*p));
}

// ------------------------------------------------------------- discovery

void DsrAgent::startDiscovery(net::NodeId target, std::uint64_t causeUid) {
  DiscoveryState& st = discovery_[target];
  if (st.active) return;
  st.active = true;
  st.backoff = cfg_.requestBackoffInitial;
  st.causeUid = causeUid;
  if (metrics_) ++metrics_->routeDiscoveriesStarted;

  if (cfg_.nonPropagatingRequests) {
    if (metrics_) ++metrics_->nonPropRequestsSent;
    sendRequest(target, /*ttl=*/1);
    st.pendingEvent = sched_.scheduleAfter(
        cfg_.nonPropRequestTimeout,
        [this, target] { onDiscoveryTimeout(target); },
        prof::Category::kRouting);
  } else {
    onDiscoveryTimeout(target);  // go straight to a flood
  }
}

void DsrAgent::onDiscoveryTimeout(net::NodeId target) {
  DiscoveryState& st = discovery_[target];
  st.pendingEvent = sim::kInvalidEvent;
  if (!st.active) return;
  // A route may have arrived via snooping rather than a reply.
  if (lookupRoute(target)) {
    endDiscovery(target);
    drainSendBuffer();
    return;
  }
  if (!sendBuf_.hasPacketsFor(target)) {
    endDiscovery(target);  // nothing left to send; stop asking
    return;
  }
  if (metrics_) ++metrics_->floodRequestsSent;
  sendRequest(target, cfg_.maxRequestTtl);
  st.pendingEvent = sched_.scheduleAfter(
      st.backoff, [this, target] { onDiscoveryTimeout(target); },
      prof::Category::kRouting);
  st.backoff = std::min(st.backoff + st.backoff, cfg_.requestBackoffMax);
}

void DsrAgent::sendRequest(net::NodeId target, std::uint8_t ttl) {
  DiscoveryState& st = discovery_[target];
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kRouteRequest;
  p->src = self_;
  p->dst = net::kBroadcast;
  p->originatedAt = sched_.now();
  p->causeUid = st.causeUid;  // chain the flood to the packet that needs it
  p->rreq = net::RouteRequestHdr{
      .origin = self_,
      .target = target,
      .id = st.nextId++,
      .ttl = ttl,
      .path = {self_},
      .piggybackedError = std::nullopt,
  };
  if (cfg_.gratuitousRepair && pendingRepairError_) {
    p->rreq->piggybackedError = *pendingRepairError_;
    pendingRepairError_.reset();
  }
  mac_.send(std::move(p), net::kBroadcast, /*priority=*/true);
}

void DsrAgent::endDiscovery(net::NodeId target) {
  auto it = discovery_.find(target);
  if (it == discovery_.end()) return;
  sched_.cancel(it->second.pendingEvent);
  it->second.pendingEvent = sim::kInvalidEvent;
  it->second.active = false;
}

void DsrAgent::drainSendBuffer() {
  // Try every buffered destination against the (possibly just updated)
  // cache; send what has become routable.
  for (net::NodeId target : sendBuf_.destinations()) {
    auto hit = lookupRoute(target);
    if (!hit) continue;
    for (auto& entry : sendBuf_.takeForDest(target)) {
      recordCacheHit(*hit);
      auto p = net::clone(*entry.packet);
      p->routeProv = hit->prov;
      p->route = net::SourceRoute{hit->hops, 0};
      transmitAlongRoute(std::move(p));
    }
    endDiscovery(target);
  }
}

// ------------------------------------------------------------------ errors

void DsrAgent::onSendFailed(net::PacketPtr p, net::NodeId nextHop) {
  prof::Scope profScope(sched_.profiler(), prof::Category::kRouting, self_);
  const net::LinkId broken{self_, nextHop};
  const bool fake = oracle_ != nullptr &&
                    oracle_->linkValid(self_, nextHop, sched_.now());
  if (metrics_) {
    ++metrics_->linkBreaksDetected;
    if (fake) ++metrics_->fakeLinkBreaks;  // congestion, not mobility
  }
  if (tracing()) {
    telemetry::TraceRecord r;
    r.at = sched_.now();
    r.event = telemetry::TraceEvent::kLinkBreak;
    r.node = self_;
    r.src = self_;
    r.dst = nextHop;
    r.detail = fake ? 1 : 0;
    tracer_->emit(r);
  }
  noteBrokenLink(broken, net::RouteOrigin::kMacFeedback);

  // Flush queued packets that would use the same dead link, as ns-2 does.
  std::vector<mac::QueuedPacket> purged = mac_.purgeNextHop(nextHop);

  // The packet whose transmission failed.
  if (p->kind == net::PacketKind::kData) {
    originateError(broken, p.get());
    if (!trySalvage(*p, broken)) {
      if (metrics_) ++metrics_->dropLinkFailNoSalvage;
      tracePacketEvent(telemetry::TraceEvent::kPktDrop, *p,
                       telemetry::DropReason::kLinkFailNoSalvage);
    }
  }
  for (const mac::QueuedPacket& qp : purged) {
    if (qp.packet->kind != net::PacketKind::kData) continue;
    if (!trySalvage(*qp.packet, broken)) {
      if (metrics_) ++metrics_->dropLinkFailNoSalvage;
      tracePacketEvent(telemetry::TraceEvent::kPktDrop, *qp.packet,
                       telemetry::DropReason::kLinkFailNoSalvage);
    }
  }
}

bool DsrAgent::trySalvage(const net::Packet& failed, net::LinkId broken) {
  if (!cfg_.salvaging) return false;
  if (failed.salvageCount >= cfg_.maxSalvageCount) return false;
  if (!failed.route) return false;
  const net::NodeId dest = failed.route->destination();
  if (dest == self_) return false;
  auto hit = lookupRoute(dest);
  if (!hit || net::routeContainsLink(hit->hops, broken)) return false;
  if (metrics_) ++metrics_->salvageAttempts;
  recordCacheHit(*hit);
  auto p = net::clone(failed);
  // The salvaged packet now follows the salvor's cache entry; re-attribute
  // any later failure to it rather than the source's original entry.
  p->routeProv = hit->prov;
  p->route = net::SourceRoute{std::move(hit->hops), 0};
  ++p->salvageCount;
  transmitAlongRoute(std::move(p));
  return true;
}

void DsrAgent::noteBrokenLink(net::LinkId link, net::RouteOrigin origin) {
  // Remove from the route cache; the affected paths' ages feed the adaptive
  // timeout estimator as route-lifetime samples.
  const auto affected = cache_->removeLink(link, sched_.now());
  if (affected.empty()) {
    adaptive_.onLinkBreak(sched_.now());
  } else {
    for (sim::Time addedAt : affected) {
      adaptive_.onRouteBreak(addedAt, sched_.now());
    }
  }
  if (cfg_.negativeCache) {
    neg_.insert(link, sched_.now(), origin);
    if (prof::Profiler* pr = sched_.profiler()) {
      pr->notePeak(prof::Gauge::kNegCacheEntries, neg_.rawSize());
    }
    if (metrics_) ++metrics_->negCacheInsertions;
  }
  forwardedLinks_.erase(link);
}

void DsrAgent::originateError(net::LinkId link, const net::Packet* failed) {
  ++errorCounter_;
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kRouteError;
  p->src = self_;
  p->originatedAt = sched_.now();
  if (failed != nullptr) {
    // Chain the error to the packet whose failure it reports, and carry the
    // provenance of the cache entry that routed that packet over the broken
    // link — the RERR is the stale entry's obituary.
    p->causeUid = failed->uid;
    p->routeProv = failed->routeProv;
  }
  p->rerr = net::RouteErrorHdr{link, self_, errorCounter_};

  if (cfg_.widerErrorNotification) {
    // Technique 1: bad news travels as a MAC broadcast; receivers clean
    // their caches and selectively rebroadcast (see handleErrorBroadcast).
    p->dst = net::kBroadcast;
    traceRerr(telemetry::TraceEvent::kRerrOriginate, link, /*detail=*/1,
              p.get());
    mac_.send(std::move(p), net::kBroadcast, /*priority=*/true);
    return;
  }

  // Base DSR: unicast the error to the source of the failed packet over the
  // reversed traversed prefix of its source route.
  if (failed == nullptr || !failed->route) return;
  const auto& hops = failed->route->hops;
  auto selfIt = std::find(hops.begin(), hops.end(), self_);
  if (selfIt == hops.end()) return;
  if (selfIt == hops.begin()) {
    // We are the source: no packet needed; remember the error for
    // gratuitous route repair on the next request.
    if (cfg_.gratuitousRepair) pendingRepairError_ = link;
    return;
  }
  std::vector<net::NodeId> back(
      std::make_reverse_iterator(selfIt + 1), hops.rend());
  p->dst = back.back();
  p->route = net::SourceRoute{std::move(back), 0};
  traceRerr(telemetry::TraceEvent::kRerrOriginate, link, /*detail=*/0,
            p.get());
  transmitAlongRoute(std::move(p));
}

void DsrAgent::handleErrorUnicast(const net::PacketPtr& p) {
  assert(p->rerr && p->route);
  if (p->route->hops[p->route->cursor] != self_) return;
  noteBrokenLink(p->rerr->broken, net::RouteOrigin::kRerrUnicast);
  if (p->route->atDestination()) {
    // We are the source being notified: arm gratuitous route repair.
    if (cfg_.gratuitousRepair) pendingRepairError_ = p->rerr->broken;
    return;
  }
  traceRerr(telemetry::TraceEvent::kRerrForward, p->rerr->broken,
            /*detail=*/0, p.get());
  transmitAlongRoute(net::clone(*p));
}

void DsrAgent::handleErrorBroadcast(const net::PacketPtr& p) {
  assert(p->rerr);
  const net::RouteErrorHdr& err = *p->rerr;
  if (err.detector == self_) return;
  if (errorSeen(err.detector, err.errorId)) return;

  // Rebroadcast only if we both cached the broken link and had used it in
  // packets we forwarded — this prunes the flood to the tree of nodes that
  // actually routed over the link (plus their snooping neighbors). Both
  // predicates must be evaluated before noteBrokenLink cleans them up.
  const bool hadLink = cache_->containsLink(err.broken);
  const bool usedInForwarding = forwardedLinks_.contains(err.broken);
  noteBrokenLink(err.broken, net::RouteOrigin::kRerrBroadcast);

  if (hadLink && usedInForwarding) {
    if (metrics_) ++metrics_->rerrWideRebroadcasts;
    traceRerr(telemetry::TraceEvent::kRerrForward, err.broken, /*detail=*/1,
              p.get());
    auto fwd = net::clone(*p);
    const auto jitter = sim::Time::nanos(rng_.uniformInt(
        0, std::max<std::int64_t>(1, cfg_.broadcastJitterMax.ns())));
    sched_.scheduleAfter(
        jitter,
        [this, fwd = std::move(fwd)] {
          mac_.send(fwd, net::kBroadcast, /*priority=*/true);
        },
        prof::Category::kRouting);
  }
}

// ------------------------------------------------------------------- tap

void DsrAgent::onTap(const mac::Frame& f) {
  prof::Scope profScope(sched_.profiler(), prof::Category::kRouting, self_);
  if (cfg_.negativeCache) neg_.erase(net::LinkId{self_, f.src});
  if (!cfg_.promiscuousListening) return;
  if (!f.packet) return;
  const net::Packet& p = *f.packet;

  switch (p.kind) {
    case net::PacketKind::kData:
    case net::PacketKind::kRouteReply: {
      if (!p.route) break;
      const auto& hops = p.route->hops;
      auto txIt = std::find(hops.begin(), hops.end(), f.src);
      if (txIt == hops.end()) break;
      // We hear the transmitter, so we can reach everything downstream of
      // it: cache [self, transmitter, ...rest].
      std::vector<net::NodeId> snooped;
      snooped.push_back(self_);
      snooped.insert(snooped.end(), txIt, hops.end());
      if (!net::routeHasDuplicates(snooped)) {
        cacheRoute(snooped, net::RouteOrigin::kSnooped);
      }

      // A route reply also reveals the reported route.
      if (p.rrep) {
        const auto& rep = p.rrep->route;
        auto it = std::find(rep.begin(), rep.end(), self_);
        if (it != rep.end()) {
          cacheRoute(std::span<const net::NodeId>(
                         &*it, static_cast<std::size_t>(rep.end() - it)),
                     net::RouteOrigin::kSnooped);
        }
      }

      // Gratuitous reply (automatic route shortening): if this data packet
      // will reach us several hops later anyway, tell the source to skip
      // the detour.
      if (cfg_.gratuitousReplies && p.kind == net::PacketKind::kData) {
        auto selfIt = std::find(hops.begin(), hops.end(), self_);
        if (selfIt != hops.end() && selfIt > txIt + 1) {
          const net::NodeId source = hops.front();
          auto last = lastGratReply_.find(source);
          if (last == lastGratReply_.end() ||
              sched_.now() - last->second >= kGratReplyHoldoff) {
            lastGratReply_[source] = sched_.now();
            std::vector<net::NodeId> shortened(hops.begin(), txIt + 1);
            shortened.insert(shortened.end(), selfIt, hops.end());
            // Back path to the source over the shortened prefix.
            std::vector<net::NodeId> backPath;
            backPath.push_back(self_);
            for (auto it2 = std::make_reverse_iterator(txIt + 1);
                 it2 != hops.rend(); ++it2) {
              backPath.push_back(*it2);
            }
            if (!net::routeHasDuplicates(shortened) &&
                !net::routeHasDuplicates(backPath) && backPath.size() >= 2) {
              if (metrics_) ++metrics_->gratuitousRepliesGenerated;
              sendReply(std::move(shortened), std::move(backPath),
                        /*fromCache=*/false, /*freshness=*/0,
                        /*causeUid=*/p.uid);
            }
          }
        }
      }
      break;
    }
    case net::PacketKind::kRouteError:
      // Deliberately NOT snooped. Base DSR's incomplete error notification
      // — errors clean only the caches on the reverse path — is the
      // premise of the paper's wider-error technique; cleaning caches from
      // overheard unicast errors would make every error implicitly "wide".
      break;
    case net::PacketKind::kRouteRequest:
      break;  // requests are broadcast; never tapped
  }
}

// ------------------------------------------------------------------ cache

void DsrAgent::cacheRoute(std::span<const net::NodeId> hops,
                          net::RouteOrigin origin) {
  if (hops.size() < 2 || hops.front() != self_) return;
  std::size_t usable = hops.size();
  if (cfg_.negativeCache) {
    // Mutual exclusion: truncate at the first negatively-cached link so a
    // freshly-erased stale route cannot be re-learned from in-flight
    // packets ("quick pollution").
    for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
      if (neg_.contains(net::LinkId{hops[i], hops[i + 1]}, sched_.now())) {
        usable = i + 1;
        break;
      }
    }
  }
  if (usable < 2) return;
  cache_->insert(hops.subspan(0, usable), sched_.now(), origin);
  if (prof::Profiler* pr = sched_.profiler()) {
    pr->notePeak(prof::Gauge::kRouteCacheEntries, cache_->size());
  }
  // A cache update may make buffered destinations routable.
  if (sendBuf_.size() > 0) drainSendBuffer();
}

std::optional<RouteLookup> DsrAgent::lookupRoute(net::NodeId dest) {
  if (!cfg_.negativeCache) return cache_->lookup(dest);
  // Skip routes over quarantined links, but let alternate cached paths
  // serve the destination.
  return cache_->lookup(dest, [this](net::LinkId link) {
    return !neg_.contains(link, sched_.now());
  });
}

void DsrAgent::recordCacheHit(const RouteLookup& hit) {
  const bool valid =
      oracle_ == nullptr || oracle_->routeValid(hit.hops, sched_.now());
  if (metrics_) {
    ++metrics_->cacheHits;
    if (oracle_ != nullptr && !valid) {
      ++metrics_->invalidCacheHits;
      // Attribute the stale hit to how the serving entry was learned —
      // the causal breakdown behind the paper's Table 3 outcome counters.
      const auto idx = static_cast<std::size_t>(hit.prov.origin);
      if (idx < metrics_->invalidCacheHitsByOrigin.size()) {
        ++metrics_->invalidCacheHitsByOrigin[idx];
      }
    }
  }
  if (tracing()) {
    telemetry::TraceRecord r;
    r.at = sched_.now();
    r.event = telemetry::TraceEvent::kCacheHit;
    r.node = self_;
    r.src = self_;
    r.dst = hit.hops.empty() ? 0 : hit.hops.back();
    r.detail = oracle_ == nullptr ? -1 : (valid ? 1 : 0);
    r.prov = hit.prov;
    tracer_->emit(r);
  }
}

void DsrAgent::tracePacketEvent(telemetry::TraceEvent event,
                                const net::Packet& p,
                                telemetry::DropReason reason,
                                std::int64_t detail) {
  if (!tracing()) return;
  telemetry::TraceRecord r =
      telemetry::packetRecord(event, sched_.now(), self_, p, reason);
  r.detail = detail;
  tracer_->emit(r);
}

void DsrAgent::traceRerr(telemetry::TraceEvent event, net::LinkId broken,
                         std::int64_t detail, const net::Packet* p) {
  if (!tracing()) return;
  telemetry::TraceRecord r;
  r.at = sched_.now();
  r.event = event;
  r.node = self_;
  r.kind = net::PacketKind::kRouteError;
  r.src = broken.from;
  r.dst = broken.to;
  r.detail = detail;
  if (p != nullptr) {
    r.uid = p->uid;
    r.cause = p->causeUid;
    r.prov = p->routeProv;
  }
  tracer_->emit(r);
}

// --------------------------------------------------------------- periodic

void DsrAgent::periodicExpiry() {
  const sim::Time timeout = currentExpiryTimeout();
  if (timeout < sim::Time::max()) {
    const sim::Time now = sched_.now();
    const sim::Time cutoff =
        now > timeout ? now - timeout : sim::Time::zero();
    const std::size_t pruned = cache_->expireUnusedSince(cutoff);
    if (metrics_) metrics_->expiredLinks += pruned;
  }
  sched_.scheduleAfter(
      cfg_.expiryCheckPeriod, [this] { periodicExpiry(); },
      prof::Category::kRouting);
}

void DsrAgent::periodicBufferSweep() {
  const auto expired = sendBuf_.expire(sched_.now());
  if (metrics_) metrics_->dropSendBufferTimeout += expired.size();
  for (const auto& e : expired) {
    if (e.packet) {
      tracePacketEvent(telemetry::TraceEvent::kPktDrop, *e.packet,
                       telemetry::DropReason::kSendBufferTimeout);
    }
  }
  // Safety net: if packets are waiting but no discovery is running (e.g.
  // the discovery ended because a snooped route later vanished), restart.
  for (auto& [target, st] : discovery_) {
    if (!st.active && sendBuf_.hasPacketsFor(target)) startDiscovery(target);
  }
  sched_.scheduleAfter(
      sim::Time::seconds(1), [this] { periodicBufferSweep(); },
      prof::Category::kRouting);
}

// -------------------------------------------------------------- dedup sets

bool DsrAgent::requestSeen(net::NodeId origin, std::uint32_t id) {
  return seenRequests_.contains(seenKey(origin, id));
}

void DsrAgent::rememberRequest(net::NodeId origin, std::uint32_t id) {
  const auto key = seenKey(origin, id);
  if (seenRequests_.insert(key).second) {
    seenRequestsFifo_.push_back(key);
    if (seenRequestsFifo_.size() > kSeenTableCapacity) {
      seenRequests_.erase(seenRequestsFifo_.front());
      seenRequestsFifo_.pop_front();
    }
  }
}

bool DsrAgent::errorSeen(net::NodeId detector, std::uint32_t id) {
  const auto key = seenKey(detector, id);
  if (seenErrors_.contains(key)) return true;
  seenErrors_.insert(key);
  seenErrorsFifo_.push_back(key);
  if (seenErrorsFifo_.size() > kSeenTableCapacity) {
    seenErrors_.erase(seenErrorsFifo_.front());
    seenErrorsFifo_.pop_front();
  }
  return false;
}

}  // namespace manet::core
