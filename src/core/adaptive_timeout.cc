#include "src/core/adaptive_timeout.h"

#include <algorithm>

namespace manet::core {

void AdaptiveTimeout::onRouteBreak(sim::Time addedAt, sim::Time now) {
  // manet-lint: allow(float-time): paper's alpha*avg-lifetime heuristic is
  // defined over seconds; fixed-op IEEE-754 math, bit-stable per seed.
  const double lifetime = std::max(0.0, (now - addedAt).toSeconds());
  lifetimeSumSec_ += lifetime;
  ++samples_;
  lastBreakAt_ = now;
}

sim::Time AdaptiveTimeout::timeout(sim::Time now) const {
  const sim::Time sinceBreak = now - lastBreakAt_;
  const sim::Time fromLifetime =
      // manet-lint: allow(float-time): same fixed-op heuristic as above
      sim::Time::fromSeconds(alpha_ * avgRouteLifetimeSec());
  return std::max({fromLifetime, sinceBreak, minTimeout_});
}

}  // namespace manet::core
