// Reliable (TCP-like) transport over DSR — extension beyond the paper.
//
// The paper's related work (Holland & Vaidya, MobiCom'99) showed that stale
// DSR routes hit TCP especially hard: every stale-route loss looks like
// congestion to TCP, which then collapses its window. This module provides
// a compact TCP Tahoe-style transport so the caching techniques can be
// evaluated under feedback-controlled traffic:
//   * cumulative ACKs with out-of-order buffering at the receiver,
//   * RTT estimation (Jacobson SRTT/RTTVAR, Karn's rule) and exponential
//     RTO backoff,
//   * slow start / congestion avoidance with ssthresh, Tahoe-style reaction
//     (retransmit + cwnd = 1) on timeout, and fast retransmit on three
//     duplicate ACKs.
// Segments are numbered in whole segments (not bytes) for simplicity.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/core/dsr_agent.h"
#include "src/sim/scheduler.h"

namespace manet::transport {

struct ReliableConfig {
  std::uint32_t segmentBytes = 512;   // payload per segment (paper's MTU)
  std::uint32_t ackBytes = 40;
  double initialCwnd = 1.0;
  double initialSsthresh = 32.0;
  double maxCwnd = 64.0;
  sim::Time initialRto = sim::Time::seconds(3);
  sim::Time minRto = sim::Time::millis(200);
  sim::Time maxRto = sim::Time::seconds(60);
  int dupAckThreshold = 3;
};

/// Receiving side: installs a delivery handler on the destination's DSR
/// agent, buffers out-of-order segments and answers every data segment with
/// a cumulative ACK.
class ReliableReceiver {
 public:
  ReliableReceiver(core::DsrAgent& agent, std::uint32_t connId);

  std::uint64_t nextExpected() const { return nextExpected_; }
  std::uint64_t segmentsReceived() const { return segmentsReceived_; }

 private:
  void onSegment(const net::Packet& p);
  /// `causeUid` chains the ACK to the data segment it acknowledges.
  void sendAck(net::NodeId to, std::uint64_t causeUid);

  core::DsrAgent& agent_;
  std::uint32_t connId_;
  std::uint64_t nextExpected_ = 0;
  std::uint64_t segmentsReceived_ = 0;
  std::set<std::uint64_t> outOfOrder_;
};

/// Sending side: paced by the congestion window and ACK clock.
class ReliableSender {
 public:
  /// Streams `totalSegments` segments to `peer` (the receiver must exist
  /// for the connId). Use a large count for a saturating flow.
  ReliableSender(core::DsrAgent& agent, sim::Scheduler& sched,
                 net::NodeId peer, std::uint32_t connId,
                 std::uint64_t totalSegments, const ReliableConfig& cfg = {});

  void start();

  // --- introspection ---
  std::uint64_t acked() const { return sndUna_; }
  bool finished() const { return sndUna_ >= totalSegments_; }
  double cwnd() const { return cwnd_; }
  sim::Time currentRto() const { return rto_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t timeouts() const { return timeouts_; }
  bool timerArmed() const { return timer_ != sim::kInvalidEvent; }
  std::uint64_t inFlight() const { return sndNext_ - sndUna_; }
  /// Acked payload bytes per second of elapsed time since start().
  double goodputKbps(sim::Time now) const;

 private:
  void onDelivery(const net::Packet& p);
  void onAck(std::uint64_t ackNo);
  void trySend();
  void sendSegment(std::uint64_t seq, bool isRetransmit);
  void armTimer();
  void onTimeout();
  void updateRtt(sim::Time sample);

  core::DsrAgent& agent_;
  sim::Scheduler& sched_;
  net::NodeId peer_;
  std::uint32_t connId_;
  std::uint64_t totalSegments_;
  ReliableConfig cfg_;

  std::uint64_t sndUna_ = 0;   // oldest unacked segment
  std::uint64_t sndNext_ = 0;  // next segment to send (rewinds on loss)
  std::uint64_t sndMax_ = 0;   // high-water mark: seqs below were sent before
  double cwnd_;
  double ssthresh_;
  int dupAcks_ = 0;

  sim::Time rto_;
  bool rttValid_ = false;
  double srttSec_ = 0.0;
  double rttvarSec_ = 0.0;
  sim::EventId timer_ = sim::kInvalidEvent;
  sim::Time startedAt_;
  std::optional<sim::Time> finishedAt_;
  /// Send times for RTT sampling; retransmitted seqs are removed (Karn).
  std::unordered_map<std::uint64_t, sim::Time> sendTimes_;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t timeouts_ = 0;
};

}  // namespace manet::transport
