#include "src/transport/reliable.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace manet::transport {

// ---------------------------------------------------------------- receiver

ReliableReceiver::ReliableReceiver(core::DsrAgent& agent,
                                   std::uint32_t connId)
    : agent_(agent), connId_(connId) {
  agent_.addDeliveryHandler([this](const net::Packet& p) { onSegment(p); });
}

void ReliableReceiver::onSegment(const net::Packet& p) {
  if (!p.transport || p.transport->isAck) return;
  if (p.transport->connId != connId_) return;
  const std::uint64_t seq = p.transport->seq;
  if (seq == nextExpected_) {
    ++nextExpected_;
    ++segmentsReceived_;
    // Drain any buffered successors.
    while (!outOfOrder_.empty() && *outOfOrder_.begin() == nextExpected_) {
      outOfOrder_.erase(outOfOrder_.begin());
      ++nextExpected_;
      ++segmentsReceived_;
    }
  } else if (seq > nextExpected_) {
    outOfOrder_.insert(seq);  // duplicates collapse in the set
  }
  sendAck(p.src, p.uid);
}

void ReliableReceiver::sendAck(net::NodeId to, std::uint64_t causeUid) {
  auto ack = net::Packet::make();
  ack->kind = net::PacketKind::kData;
  ack->src = agent_.id();
  ack->dst = to;
  ack->payloadBytes = 40;  // TCP ACK-sized
  ack->transport = net::TransportHdr{
      .connId = connId_, .isAck = true, .seq = 0, .ackNo = nextExpected_};
  ack->causeUid = causeUid;  // the segment this ACK acknowledges
  agent_.sendPacket(std::move(ack));
}

// ------------------------------------------------------------------ sender

ReliableSender::ReliableSender(core::DsrAgent& agent, sim::Scheduler& sched,
                               net::NodeId peer, std::uint32_t connId,
                               std::uint64_t totalSegments,
                               const ReliableConfig& cfg)
    : agent_(agent),
      sched_(sched),
      peer_(peer),
      connId_(connId),
      totalSegments_(totalSegments),
      cfg_(cfg),
      cwnd_(cfg.initialCwnd),
      ssthresh_(cfg.initialSsthresh),
      rto_(cfg.initialRto) {
  agent_.addDeliveryHandler([this](const net::Packet& p) { onDelivery(p); });
}

void ReliableSender::start() {
  startedAt_ = sched_.now();
  trySend();
}

double ReliableSender::goodputKbps(sim::Time now) const {
  // For a finished transfer, measure over the actual transfer duration.
  const sim::Time end = finishedAt_ ? std::min(*finishedAt_, now) : now;
  // manet-lint: allow(float-time): goodput reporting only; never fed back
  const double secs = (end - startedAt_).toSeconds();
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(sndUna_) * cfg_.segmentBytes * 8.0 / 1000.0 /
         secs;
}

void ReliableSender::onDelivery(const net::Packet& p) {
  if (!p.transport || !p.transport->isAck) return;
  if (p.transport->connId != connId_ || p.src != peer_) return;
  onAck(p.transport->ackNo);
}

void ReliableSender::onAck(std::uint64_t ackNo) {
  if (ackNo > sndUna_) {
    // New data acknowledged.
    const std::uint64_t newlyAcked = ackNo - sndUna_;
    for (std::uint64_t s = sndUna_; s < ackNo; ++s) {
      auto it = sendTimes_.find(s);
      if (it != sendTimes_.end()) {
        updateRtt(sched_.now() - it->second);
        sendTimes_.erase(it);
      }
    }
    sndUna_ = ackNo;
    // A cumulative ACK can jump past a rewound sndNext_ (the receiver had
    // later segments buffered); never let the window math underflow.
    sndNext_ = std::max(sndNext_, sndUna_);
    dupAcks_ = 0;
    if (sndUna_ >= totalSegments_ && !finishedAt_) finishedAt_ = sched_.now();
    // Window growth: slow start below ssthresh, else congestion avoidance.
    for (std::uint64_t i = 0; i < newlyAcked; ++i) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;
      } else {
        cwnd_ += 1.0 / cwnd_;
      }
    }
    cwnd_ = std::min(cwnd_, cfg_.maxCwnd);
    armTimer();
    trySend();
    return;
  }
  if (ackNo == sndUna_ && sndNext_ > sndUna_) {
    // Duplicate ACK: the receiver is missing sndUna_.
    if (++dupAcks_ == cfg_.dupAckThreshold) {
      // Fast retransmit (Tahoe: shrink to slow start and go back to the
      // hole — everything past it will be resent as the window reopens).
      ssthresh_ = std::max(2.0, cwnd_ / 2.0);
      cwnd_ = cfg_.initialCwnd;
      dupAcks_ = 0;
      ++retransmissions_;
      sendSegment(sndUna_, /*isRetransmit=*/true);
      sndNext_ = sndUna_ + 1;
      armTimer();
    }
  }
}

void ReliableSender::trySend() {
  while (sndNext_ < totalSegments_ &&
         static_cast<double>(sndNext_ - sndUna_) < cwnd_) {
    // Segments below the high-water mark are go-back-N resends: Karn's
    // rule excludes them from RTT sampling.
    sendSegment(sndNext_, /*isRetransmit=*/sndNext_ < sndMax_);
    ++sndNext_;
    sndMax_ = std::max(sndMax_, sndNext_);
  }
  if (timer_ == sim::kInvalidEvent && sndNext_ > sndUna_) armTimer();
}

void ReliableSender::sendSegment(std::uint64_t seq, bool isRetransmit) {
  // manet-lint: allow(causal-id): root origination — stream segments are
  // new application data; retransmits are re-makes of the same segment,
  // not causally derived packets
  auto p = net::Packet::make();
  p->kind = net::PacketKind::kData;
  p->src = agent_.id();
  p->dst = peer_;
  p->payloadBytes = cfg_.segmentBytes;
  p->flowId = connId_;
  p->seqInFlow = seq;
  p->transport = net::TransportHdr{
      .connId = connId_, .isAck = false, .seq = seq, .ackNo = 0};
  if (isRetransmit) {
    sendTimes_.erase(seq);  // Karn: never sample RTT off retransmits
  } else {
    sendTimes_.emplace(seq, sched_.now());
  }
  agent_.sendPacket(std::move(p));
}

void ReliableSender::armTimer() {
  sched_.cancel(timer_);
  timer_ = sim::kInvalidEvent;
  if (sndUna_ >= totalSegments_ || sndNext_ == sndUna_) return;
  timer_ = sched_.scheduleAfter(
      rto_, [this] { onTimeout(); }, prof::Category::kTransport);
}

void ReliableSender::onTimeout() {
  timer_ = sim::kInvalidEvent;
  if (sndUna_ >= sndNext_) return;  // everything acked meanwhile
  ++timeouts_;
  ++retransmissions_;
  // Tahoe reaction: halve ssthresh, collapse the window, back off the RTO,
  // and go back to the hole (cumulative ACKs make later segments resend as
  // slow start reopens the window).
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = cfg_.initialCwnd;
  dupAcks_ = 0;
  rto_ = std::min(rto_ + rto_, cfg_.maxRto);  // exponential backoff
  sendSegment(sndUna_, /*isRetransmit=*/true);
  sndNext_ = sndUna_ + 1;
  armTimer();
}

void ReliableSender::updateRtt(sim::Time sample) {
  // manet-lint: allow(float-time): Jacobson/Karels SRTT/RTTVAR estimator is
  // defined over real seconds; fixed-op math, bit-stable per seed.
  const double r = sample.toSeconds();
  if (!rttValid_) {
    srttSec_ = r;
    rttvarSec_ = r / 2.0;
    rttValid_ = true;
  } else {
    // Jacobson/Karels: alpha = 1/8, beta = 1/4.
    rttvarSec_ = 0.75 * rttvarSec_ + 0.25 * std::abs(srttSec_ - r);
    srttSec_ = 0.875 * srttSec_ + 0.125 * r;
  }
  const double rtoSec = srttSec_ + 4.0 * rttvarSec_;
  // manet-lint: allow(float-time): RTO from the estimator above, fixed-op
  rto_ = std::clamp(sim::Time::fromSeconds(rtoSec), cfg_.minRto, cfg_.maxRto);
}

}  // namespace manet::transport
